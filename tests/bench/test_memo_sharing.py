"""Cross-point memo sharing in the sweep layer.

The pattern memo's headline claim is that a :class:`SweepRunner` carries
one :class:`~repro.dmm.memo.ConflictMemo` across every instrumented sort
of a sweep — and that this sharing is *pure speedup*: the produced
``BenchPoint``s are equal to an unmemoized run's, the memo observably
hits across points, and the ``"loop"`` oracle stays memo-free.
"""

import pytest

from repro.bench.runner import SweepRunner
from repro.engine import execute_items, sweep_items
from repro.dmm.memo import ConflictMemo
from repro.errors import ValidationError
from repro.gpu.device import QUADRO_M4000
from repro.sort.config import SortConfig


@pytest.fixture
def cfg():
    return SortConfig(elements_per_thread=3, block_size=32, warp_size=32)


def make_runner(cfg, **kwargs):
    defaults = dict(exact_threshold=cfg.tile_size * 32, score_blocks=4, seed=0)
    defaults.update(kwargs)
    return SweepRunner(cfg, QUADRO_M4000, **defaults)


class TestRunnerMemoResolution:
    def test_auto_builds_one_shared_memo(self, cfg):
        runner = make_runner(cfg)
        assert isinstance(runner.memo, ConflictMemo)

    def test_auto_with_loop_scoring_is_memo_free(self, cfg):
        assert make_runner(cfg, scoring="loop").memo is None

    def test_explicit_memo_with_loop_rejected(self, cfg):
        with pytest.raises(ValidationError):
            make_runner(cfg, scoring="loop", memo=ConflictMemo())

    def test_none_escape_hatch(self, cfg):
        assert make_runner(cfg, memo=None).memo is None


class TestSweepBitIdentity:
    def test_memoized_sweep_matches_unmemoized(self, cfg):
        sizes = [cfg.tile_size * (1 << k) for k in range(3)]
        for name in ("worst-case", "sorted"):
            memoized = make_runner(cfg).sweep(name, sizes)
            plain = make_runner(cfg, memo=None).sweep(name, sizes)
            assert memoized == plain  # BenchPoints are dataclass-equal

    def test_memo_hits_across_points(self, cfg):
        """The block rounds of every point of a sweep repeat the same
        patterns — after the first point, lookups must start hitting.
        Pinned to simulated vectorized scoring: the registry-wide "auto"
        default routes these constructed families analytic, where the
        memo (by design) never engages."""
        runner = make_runner(cfg, scoring="vectorized")
        runner.sweep("worst-case", [cfg.tile_size * 2, cfg.tile_size * 4])
        assert runner.memo.hits > 0

    def test_memo_shared_across_input_families(self, cfg):
        """One runner, several families: the shared memo keeps hitting
        wherever families overlap (worst-case rounds recur per size)."""
        runner = make_runner(cfg, scoring="vectorized")
        runner.sweep("worst-case", [cfg.tile_size * 2])
        hits_before = runner.memo.hits
        runner.sweep("worst-case", [cfg.tile_size * 2])
        assert runner.memo.hits > hits_before

    def test_explicit_memo_shared_between_runners(self, cfg):
        """Passing one memo to several runners widens the hit pool without
        changing results (entries are keyed by the full context)."""
        shared = ConflictMemo()
        first = make_runner(cfg, memo=shared, scoring="vectorized")
        second = make_runner(cfg, memo=shared, scoring="vectorized")
        n = cfg.tile_size * 2
        point_a = first.run_point("worst-case", n)
        hits_before = shared.hits
        point_b = second.run_point("worst-case", n)
        assert shared.hits > hits_before
        assert point_a == point_b
        assert point_b == make_runner(cfg, memo=None).run_point("worst-case", n)

    def test_auto_routed_analytic_points_skip_the_memo(self, cfg):
        """Regression for the unified default: a default-constructed
        runner routes analytic-eligible constructed-family points to the
        closed-form engine, so its memo must stay untouched while the
        points still match a pinned vectorized run bit-for-bit."""
        sizes = [cfg.tile_size * 2, cfg.tile_size * 4]
        routed = make_runner(cfg)
        points = routed.sweep("worst-case", sizes)
        assert routed.memo.hits == 0 and routed.memo.misses == 0
        pinned = make_runner(cfg, scoring="vectorized").sweep(
            "worst-case", sizes
        )
        assert points == pinned


class TestParallelMemo:
    def test_pool_workers_ship_memo_stats_to_parent(self, cfg):
        """Regression: the memo's ``_process_*`` counters are class
        attributes mutated in whichever process runs the sort, so under
        ``--engine pool`` the workers' hits/misses never used to reach
        the parent — ``cache stats``, sweep memo lines, and the service
        ``/stats`` all under-reported. Each worker result now carries a
        MemoStats delta that the parent folds into its aggregate."""
        items = sweep_items(
            cfg,
            QUADRO_M4000,
            ("worst-case",),
            [cfg.tile_size * 2, cfg.tile_size * 4],
            exact_threshold=cfg.tile_size * 8,
            score_blocks=4,
            scoring="vectorized",  # memo engages only on simulated points
        )
        before = ConflictMemo.process_stats()
        execute_items(items, jobs=2)
        delta = ConflictMemo.process_stats_delta(before)
        # The sorts ran in worker processes, yet the parent aggregate
        # must have grown: misses always (cold worker memos), and entries
        # retained by the workers are visible too.
        assert delta.misses > 0
        assert delta.tile_entries > 0

    def test_absorb_stats_folds_every_field(self):
        from repro.dmm.memo import MemoStats

        before = ConflictMemo.process_stats()
        delta = MemoStats(
            hits=3, misses=2, tile_entries=1, round_entries=1, stored_bytes=64
        )
        ConflictMemo.absorb_stats(delta)
        grown = ConflictMemo.process_stats_delta(before)
        assert grown == delta
        # Negative deltas (worker-side eviction) fold back out.
        ConflictMemo.absorb_stats(
            MemoStats(
                hits=-3,
                misses=-2,
                tile_entries=-1,
                round_entries=-1,
                stored_bytes=-64,
            )
        )
        assert ConflictMemo.process_stats() == before

    def test_parallel_points_match_unmemoized_serial(self, cfg):
        """Workers keep per-process memos (runners default to "auto");
        fan-out must still reproduce the unmemoized serial points."""
        items = sweep_items(
            cfg,
            QUADRO_M4000,
            ("worst-case", "sorted"),
            [cfg.tile_size * 2, cfg.tile_size * 4],
            exact_threshold=cfg.tile_size * 8,
            score_blocks=4,
        )
        parallel = execute_items(items, jobs=2)
        serial_plain = [
            make_runner(
                cfg, exact_threshold=cfg.tile_size * 8, memo=None
            ).run_point(item.input_name, item.num_elements)
            for item in items
        ]
        assert parallel == serial_plain
