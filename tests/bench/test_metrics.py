"""Unit tests for slowdown statistics."""

import pytest

from repro.bench.metrics import BenchPoint, slowdown_stats
from repro.errors import ValidationError


def point(n, ms, name="random"):
    return BenchPoint(
        config_name="cfg",
        device_name="dev",
        input_name=name,
        num_elements=n,
        milliseconds=ms,
        throughput_meps=n / ms / 1e3,
        replays_per_element=1.0,
        shared_cycles=0,
        global_transactions=0,
    )


class TestSlowdownStats:
    def test_peak_and_average(self):
        base = [point(100, 10.0), point(200, 20.0), point(400, 40.0)]
        worst = [point(100, 15.0), point(200, 22.0), point(400, 60.0)]
        st = slowdown_stats(base, worst)
        assert st.peak_percent == pytest.approx(50.0)
        assert st.peak_at == 100
        assert st.average_percent == pytest.approx((50 + 10 + 50) / 3)

    def test_str_format(self):
        st = slowdown_stats([point(100, 10.0)], [point(100, 15.0)])
        assert "peak 50.00%" in str(st)
        assert "100" in str(st)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            slowdown_stats([], [])

    def test_rejects_misaligned(self):
        with pytest.raises(ValidationError):
            slowdown_stats([point(100, 1.0)], [point(200, 1.0)])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            slowdown_stats([point(100, 1.0)], [point(100, 1.0), point(200, 1.0)])


class TestBenchPoint:
    def test_ms_per_element(self):
        p = point(1000, 2.0)
        assert p.ms_per_element == pytest.approx(0.002)
