"""Tests for the sweep executor — above all, that fan-out over a process
pool changes nothing about the results. The executor now lives in
``repro.engine`` (``execute_items`` routes serial work to the shared
inline engine and ``--jobs``/external-pool work to a pool engine); the
deprecated ``repro.bench.parallel.run_points`` shim is covered in
``tests/engine/test_shims.py``."""

import dataclasses

import pytest

from repro.bench.cache import BenchCache
from repro.engine import (
    ProgressEvent,
    WorkItem,
    cache_ref,
    execute_items,
    sweep_items,
)
from repro.bench.runner import SweepRunner
from repro.errors import ValidationError
from repro.gpu.device import QUADRO_M4000
from repro.sort.config import SortConfig


@pytest.fixture
def cfg():
    return SortConfig(elements_per_thread=3, block_size=32, warp_size=32)


def make_items(cfg, sizes, *, input_names=("random", "worst-case"), **kwargs):
    defaults = dict(
        exact_threshold=cfg.tile_size * 8,
        score_blocks=4,
        seed=0,
    )
    defaults.update(kwargs)
    return sweep_items(cfg, QUADRO_M4000, input_names, sizes, **defaults)


class TestWorkItem:
    def test_picklable(self, cfg):
        import pickle

        item = make_items(cfg, [cfg.tile_size * 2])[0]
        assert pickle.loads(pickle.dumps(item)) == item

    def test_describe_names_the_point(self, cfg):
        item = make_items(cfg, [cfg.tile_size * 2])[0]
        text = item.describe()
        assert "random" in text
        assert QUADRO_M4000.name in text
        assert f"{cfg.tile_size * 2:,}" in text

    def test_sweep_items_order(self, cfg):
        sizes = [cfg.tile_size * 2, cfg.tile_size * 4]
        items = make_items(cfg, sizes)
        assert [(i.input_name, i.num_elements) for i in items] == [
            ("random", sizes[0]),
            ("random", sizes[1]),
            ("worst-case", sizes[0]),
            ("worst-case", sizes[1]),
        ]

    def test_cache_ref(self, tmp_path):
        assert cache_ref(None) == (None, False)
        assert cache_ref(BenchCache(tmp_path)) == (str(tmp_path), True)


class TestSerialExecution:
    def test_matches_sweep_runner(self, cfg):
        sizes = cfg.valid_sizes(cfg.tile_size * 32)
        runner = SweepRunner(
            cfg, QUADRO_M4000, exact_threshold=cfg.tile_size * 8,
            score_blocks=4, seed=0,
        )
        expected = runner.sweep("worst-case", sizes)
        got = execute_items(make_items(cfg, sizes, input_names=("worst-case",)))
        assert got == expected

    def test_jobs_below_one_rejected(self, cfg):
        with pytest.raises(ValidationError):
            execute_items(make_items(cfg, [cfg.tile_size * 2]), jobs=0)

    def test_empty_items(self):
        assert execute_items([]) == []
        assert execute_items([], jobs=4) == []


class TestParallelMatchesSerial:
    def test_bit_identical_points(self, cfg):
        """The acceptance criterion: --jobs N must not change any result.
        Sizes cover both the exact and the synthesized path."""
        sizes = cfg.valid_sizes(cfg.tile_size * 64)
        items = make_items(cfg, sizes)
        serial = execute_items(items, jobs=1)
        parallel = execute_items(items, jobs=2)
        assert parallel == serial

    def test_parallel_with_shared_cache(self, cfg, tmp_path):
        sizes = cfg.valid_sizes(cfg.tile_size * 16)
        cache = BenchCache(tmp_path)
        items = make_items(cfg, sizes, cache=cache)
        first = execute_items(items, jobs=2)
        assert BenchCache(tmp_path).stats().point_entries == len(items)

        # Warm run: every point served from disk, bit-identical.
        events = []
        second = execute_items(items, jobs=2, progress=events.append)
        assert second == first
        assert all(e.from_cache for e in events)

    def test_more_jobs_than_items(self, cfg):
        items = make_items(cfg, [cfg.tile_size * 2], input_names=("random",))
        # total <= 1 falls back to the serial path; 2 items with 8 workers
        # must also work.
        assert execute_items(items, jobs=8) == execute_items(items, jobs=1)
        two = make_items(cfg, [cfg.tile_size * 2])
        assert execute_items(two, jobs=8) == execute_items(two, jobs=1)


class TestProgress:
    def test_serial_progress_events(self, cfg):
        sizes = [cfg.tile_size * 2, cfg.tile_size * 4]
        items = make_items(cfg, sizes, input_names=("random",))
        events = []
        points = execute_items(items, progress=events.append)
        assert [e.done for e in events] == [1, 2]
        assert all(e.total == 2 for e in events)
        assert [e.point for e in events] == points
        assert all(e.seconds >= 0 for e in events)
        assert not any(e.from_cache for e in events)

    def test_parallel_progress_counts(self, cfg):
        sizes = [cfg.tile_size * 2, cfg.tile_size * 4]
        items = make_items(cfg, sizes)
        events = []
        execute_items(items, jobs=2, progress=events.append)
        # Completion order is nondeterministic but counts are not.
        assert sorted(e.done for e in events) == [1, 2, 3, 4]
        assert {e.item for e in events} == set(items)

    def test_describe_format(self, cfg):
        item = make_items(cfg, [cfg.tile_size * 2])[0]
        event = ProgressEvent(
            done=3, total=8, item=item, point=None, seconds=0.421,
            from_cache=True,
        )
        text = event.describe()
        assert text.startswith("[3/8] ")
        assert "0.42s" in text
        assert text.endswith("(cached)")
        uncached = ProgressEvent(
            done=3, total=8, item=item, point=None, seconds=0.421,
            from_cache=False,
        )
        assert "(cached)" not in uncached.describe()


class TestExternalPool:
    def test_external_pool_matches_serial_and_stays_usable(self, cfg):
        from concurrent.futures import ProcessPoolExecutor

        items = make_items(cfg, [cfg.tile_size * 2, cfg.tile_size * 4])
        serial = execute_items(items)
        with ProcessPoolExecutor(max_workers=2) as pool:
            first = execute_items(items, pool=pool)
            # run_points must not shut the caller's pool down: a second
            # batch on the same (warm) workers still succeeds.
            second = execute_items(items, pool=pool)
            assert first == serial
            assert second == serial
            assert pool.submit(int, 7).result() == 7

    def test_external_pool_overrides_jobs(self, cfg):
        from concurrent.futures import ProcessPoolExecutor

        items = make_items(cfg, [cfg.tile_size * 2])
        with ProcessPoolExecutor(max_workers=1) as pool:
            # jobs=1 would normally mean "serial, in-process"; an explicit
            # pool wins and the single item goes through the workers.
            assert execute_items(items, jobs=1, pool=pool) == execute_items(items)


class TestRunnerKeying:
    def test_modified_device_never_served_by_stale_runner(self, cfg):
        """Regression: worker runner tables used to key devices by
        ``device.name`` only, so a long-lived pool that had warmed a
        runner for one spec would silently serve points for a *modified*
        spec sharing the name. The key is now a fingerprint of the full
        runner configuration (see ``repro.engine.tasks.runner_key``)."""
        from concurrent.futures import ProcessPoolExecutor

        n = cfg.tile_size * 2
        base = make_items(cfg, [n], input_names=("worst-case",))
        fast = dataclasses.replace(
            QUADRO_M4000, num_sms=QUADRO_M4000.num_sms * 2
        )
        modified = [dataclasses.replace(item, device=fast) for item in base]
        with ProcessPoolExecutor(max_workers=1) as pool:
            first = execute_items(base, pool=pool)
            second = execute_items(modified, pool=pool)
        # Twice the SMs must change the modeled timing; a stale runner
        # would have returned `first` again.
        assert second != first
        # And the warm-pool result matches a fresh serial run exactly.
        assert second == execute_items(modified)

    def test_config_change_on_one_pool_is_honored(self, cfg):
        """Same staleness family, config axis: items for a different
        SortConfig submitted to the same warm pool get their own runner."""
        from concurrent.futures import ProcessPoolExecutor

        other = SortConfig(
            elements_per_thread=5, block_size=32, warp_size=32
        )
        with ProcessPoolExecutor(max_workers=1) as pool:
            first = execute_items(
                make_items(cfg, [cfg.tile_size * 2]), pool=pool
            )
            second = execute_items(
                make_items(other, [other.tile_size * 2]), pool=pool
            )
        assert {p.config_name for p in first} == {cfg.name}
        assert {p.config_name for p in second} == {other.name}
        assert second == execute_items(
            make_items(other, [other.tile_size * 2])
        )
