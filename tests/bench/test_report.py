"""Unit tests for markdown report emission."""

from repro.bench.metrics import BenchPoint
from repro.bench.report import (
    markdown_sweep_table,
    render_theory_table,
)


def point(n, ms, name="random"):
    return BenchPoint(
        config_name="cfg",
        device_name="dev",
        input_name=name,
        num_elements=n,
        milliseconds=ms,
        throughput_meps=n / ms / 1e3,
        replays_per_element=2.5,
        shared_cycles=100,
        global_transactions=50,
    )


class TestSweepTable:
    def test_rows_and_slowdown(self):
        md = markdown_sweep_table(
            [point(100, 10.0)], [point(100, 15.0, "worst-case")]
        )
        lines = md.splitlines()
        assert lines[0].startswith("| N |")
        assert "| 100 |" in lines[2]
        assert "50.0" in lines[2]

    def test_is_valid_markdown_table(self):
        md = markdown_sweep_table([point(1, 1.0)], [point(1, 1.0)])
        for line in md.splitlines():
            assert line.startswith("|") and line.endswith("|")


class TestTheoryTable:
    def test_renders_rows(self):
        md = render_theory_table(
            [{"w": 32, "E": 15, "case": "small", "predicted": 225,
              "constructed": 225, "effective_threads": 3}]
        )
        assert "| 32 | 15 | small | 225 | 225 | 3 |" in md
