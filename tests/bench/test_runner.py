"""Tests for the sweep runner — most importantly, that the synthesized
large-N path agrees with exact simulation where both are available."""

import pytest

from repro.bench.runner import CalibratedRates, SweepRunner
from repro.errors import ValidationError
from repro.gpu.device import QUADRO_M4000
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort
from repro.inputs.generators import generate


def small_runner(**kwargs):
    cfg = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)
    defaults = dict(exact_threshold=cfg.tile_size * 32, score_blocks=4, seed=0)
    defaults.update(kwargs)
    return SweepRunner(cfg, QUADRO_M4000, **defaults)


class TestExactPath:
    def test_point_fields(self):
        runner = small_runner()
        n = runner.config.tile_size * 4
        p = runner.run_point("random", n)
        assert p.num_elements == n
        assert p.milliseconds > 0
        assert p.throughput_meps == pytest.approx(n / p.milliseconds / 1e3)

    def test_warp_mismatch_rejected(self):
        cfg = SortConfig(elements_per_thread=3, block_size=32, warp_size=16)
        with pytest.raises(ValidationError):
            SweepRunner(cfg, QUADRO_M4000)


class TestSynthesizedPath:
    @pytest.mark.parametrize("input_name", ["random", "worst-case", "sorted"])
    def test_matches_exact_at_overlap_size(self, input_name):
        """Synthesize a size we can also simulate exactly; the two cost
        estimates must agree closely (exactly, for periodic inputs)."""
        runner_exact = small_runner()
        cfg = runner_exact.config
        n = cfg.tile_size * 32  # == exact threshold
        exact = runner_exact.run_point(input_name, n)

        runner_synth = small_runner(exact_threshold=cfg.tile_size * 8)
        synth = runner_synth.run_point(input_name, n)

        assert synth.milliseconds == pytest.approx(exact.milliseconds, rel=0.06)
        assert synth.replays_per_element == pytest.approx(
            exact.replays_per_element, rel=0.06
        )
        assert synth.global_transactions == exact.global_transactions

    def test_monotone_in_n(self):
        runner = small_runner(exact_threshold=small_runner().config.tile_size * 4)
        sizes = runner.config.valid_sizes(10**7)[-4:]
        points = runner.sweep("worst-case", sizes)
        ms = [p.milliseconds for p in points]
        assert ms == sorted(ms)
        # conflicts/element grow ~ logarithmically: increasing, concave-ish.
        cpe = [p.replays_per_element for p in points]
        assert cpe == sorted(cpe)

    def test_calibration_cached(self):
        runner = small_runner(exact_threshold=small_runner().config.tile_size * 4)
        n = runner.config.tile_size * 64
        runner.run_point("random", n)
        assert "random" in runner._calibrations
        cal = runner._calibrations["random"]
        runner.run_point("random", n * 2)
        assert runner._calibrations["random"] is cal


class TestComputeTermContinuity:
    def test_kernel_cost_agrees_across_paths(self):
        """Regression: the synthesized base compute term was 3n/w instead
        of the measured register + block-round cost, so
        compute_warp_instructions (and simulated ms) jumped at
        exact_threshold. Exact and synthesized KernelCost must agree at a
        size where both paths are available."""
        runner = small_runner(exact_threshold=small_runner().config.tile_size * 8)
        cfg = runner.config
        n = cfg.tile_size * 32
        rates = runner._calibrate("worst-case")
        synth_cost, _ = runner._synthesize_cost(n, rates)

        data = generate("worst-case", cfg, n, seed=0)
        result = PairwiseMergeSort(cfg).sort(data, score_blocks=4, seed=0)
        exact_cost = result.kernel_cost(runner.warps_per_sm)

        assert (
            synth_cost.compute_warp_instructions
            == exact_cost.compute_warp_instructions
        )
        assert synth_cost.global_transactions == exact_cost.global_transactions
        assert synth_cost.global_words == exact_cost.global_words
        assert synth_cost.kernel_launches == exact_cost.kernel_launches

    def test_no_discontinuity_at_threshold(self):
        """Per-element compute grows with the round count, so it must not
        drop when crossing from the exact to the synthesized path (the old
        3n/w base term made it fall discontinuously)."""
        runner = small_runner(exact_threshold=small_runner().config.tile_size * 8)
        cfg = runner.config
        n_exact = cfg.tile_size * 8

        result = PairwiseMergeSort(cfg).sort(
            generate("worst-case", cfg, n_exact, seed=0), score_blocks=4, seed=0
        )
        exact_per_element = (
            result.kernel_cost(runner.warps_per_sm).compute_warp_instructions
            / n_exact
        )

        rates = runner._calibrate("worst-case")
        per_element = [exact_per_element]
        for n in (n_exact * 2, n_exact * 4, n_exact * 8):
            cost, _ = runner._synthesize_cost(n, rates)
            per_element.append(cost.compute_warp_instructions / n)
        assert per_element == sorted(per_element)


class TestCalibratedRates:
    def test_requires_global_round(self):
        cfg = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)
        data = generate("random", cfg, cfg.tile_size, seed=0)
        result = PairwiseMergeSort(cfg).sort(data)
        with pytest.raises(ValidationError):
            CalibratedRates.from_result(result)

    def test_rates_positive(self):
        cfg = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)
        data = generate("random", cfg, cfg.tile_size * 8, seed=0)
        result = PairwiseMergeSort(cfg).sort(data)
        rates = CalibratedRates.from_result(result)
        assert rates.base_shared_cycles > 0
        assert rates.global_shared_cycles > 0
