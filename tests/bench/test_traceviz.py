"""Tests for the trace heat-map renderer."""

import numpy as np
import pytest

from repro.bench.traceviz import bank_pressure, heat_map
from repro.dmm.trace import AccessTrace
from repro.errors import ValidationError


class TestBankPressure:
    def test_counts_elements(self):
        t = AccessTrace.from_dense(np.array([[0, 4, 8, 1]]))
        p = bank_pressure(t, 4)
        assert p[0, 0] == 3  # banks 0, 0, 0
        assert p[1, 0] == 1

    def test_no_broadcast_dedup(self):
        t = AccessTrace.from_dense(np.array([[4, 4]]))
        assert bank_pressure(t, 4)[0, 0] == 2

    def test_inactive_ignored(self):
        t = AccessTrace.from_dense(np.array([[-1, 3]]))
        assert bank_pressure(t, 4).sum() == 1

    def test_empty(self):
        t = AccessTrace.from_dense(np.empty((0, 4), dtype=np.int64))
        assert bank_pressure(t, 4).shape == (4, 0)


class TestHeatMap:
    def test_diagonal_is_visible(self):
        """The worst-case signature: a hot diagonal."""
        from repro.adversary.assignment import construct_warp_assignment

        wa = construct_warp_assignment(16, 7)
        t = AccessTrace.from_dense(wa.step_banks())
        out = heat_map(t, 16)
        # Step j's target bank j carries E = 7 requests -> ramp glyph '#'.
        lines = [ln for ln in out.splitlines() if ln.startswith("bank")]
        for j in range(7):
            assert lines[j][len("bank  0 │") + j] == "#"

    def test_title_and_truncation(self):
        t = AccessTrace.from_dense(np.zeros((100, 2), dtype=np.int64))
        out = heat_map(t, 4, title="demo", max_steps=8)
        assert out.splitlines()[0] == "demo"
        assert "steps 0..7" in out

    def test_rejects_bad_max_steps(self):
        t = AccessTrace.from_dense(np.array([[0]]))
        with pytest.raises(ValidationError):
            heat_map(t, 4, max_steps=0)

    def test_saturates_ramp(self):
        t = AccessTrace.from_dense(
            np.arange(0, 512, 4, dtype=np.int64)[None, :] * 0
        )
        out = heat_map(t, 4)
        assert "@" in out  # 128 same-bank requests saturate the ramp
