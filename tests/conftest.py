"""Shared fixtures: small, fast configurations used across the suite."""

import numpy as np
import pytest

from repro.gpu.device import QUADRO_M4000, RTX_2080_TI
from repro.sort.config import SortConfig


@pytest.fixture
def tiny_config() -> SortConfig:
    """w=4, E=3, b=8 — smallest config exercising every code path."""
    return SortConfig(elements_per_thread=3, block_size=8, warp_size=4)


@pytest.fixture
def small_config() -> SortConfig:
    """w=8, E=3, b=16 — small-E regime (3 < 8/2), multi-warp blocks."""
    return SortConfig(elements_per_thread=3, block_size=16, warp_size=8)


@pytest.fixture
def large_e_config() -> SortConfig:
    """w=8, E=5, b=16 — large-E regime (8/2 < 5 < 8)."""
    return SortConfig(elements_per_thread=5, block_size=16, warp_size=8)


@pytest.fixture
def thrust_config() -> SortConfig:
    """The paper's Thrust Maxwell parameters (E=15, b=512, w=32)."""
    return SortConfig(elements_per_thread=15, block_size=512, warp_size=32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def m4000():
    return QUADRO_M4000


@pytest.fixture
def rtx():
    return RTX_2080_TI
