"""Unit tests for repro.dmm.banks."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dmm.banks import BankGeometry
from repro.errors import ValidationError


class TestBankGeometry:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValidationError):
            BankGeometry(24)

    def test_bank_and_column_scalar(self):
        geo = BankGeometry(16)
        assert geo.bank_of(0) == 0
        assert geo.bank_of(17) == 1
        assert geo.column_of(17) == 1

    def test_bank_array(self):
        geo = BankGeometry(8)
        addrs = np.arange(24)
        assert np.array_equal(geo.bank_of(addrs), addrs % 8)
        assert np.array_equal(geo.column_of(addrs), addrs // 8)

    def test_rejects_negative_address(self):
        geo = BankGeometry(8)
        with pytest.raises(ValidationError):
            geo.bank_of(-1)
        with pytest.raises(ValidationError):
            geo.bank_of(np.array([0, -2]))

    @given(st.integers(min_value=0, max_value=10**9))
    def test_roundtrip(self, addr):
        geo = BankGeometry(32)
        assert geo.address_of(geo.bank_of(addr), geo.column_of(addr)) == addr

    def test_address_of_validates_bank(self):
        geo = BankGeometry(8)
        with pytest.raises(ValidationError):
            geo.address_of(bank=8, column=0)

    def test_columns_for(self):
        geo = BankGeometry(8)
        assert geo.columns_for(0) == 0
        assert geo.columns_for(1) == 1
        assert geo.columns_for(8) == 1
        assert geo.columns_for(9) == 2

    def test_as_matrix_column_major(self):
        """Contiguous addresses run down banks, then to the next column."""
        geo = BankGeometry(4)
        m = geo.as_matrix(np.arange(8))
        # address a sits at [bank a%4, column a//4]
        assert m.shape == (4, 2)
        assert m[1, 0] == 1
        assert m[1, 1] == 5

    def test_as_matrix_pads_with_fill(self):
        geo = BankGeometry(4)
        m = geo.as_matrix(np.arange(6), fill=-7)
        assert m[2, 1] == -7
        assert m[3, 1] == -7

    def test_as_matrix_rejects_2d(self):
        geo = BankGeometry(4)
        with pytest.raises(ValidationError):
            geo.as_matrix(np.zeros((2, 2)))
