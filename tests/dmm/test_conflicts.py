"""Unit and property tests for the conflict accounting — the paper's core
measurement. Includes a brute-force reference implementation that the
vectorized counter must agree with on arbitrary traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dmm.conflicts import ConflictReport, count_conflicts, step_transactions
from repro.dmm.trace import AccessKind, AccessTrace
from repro.errors import SimulationError


def brute_force(trace: AccessTrace, num_banks: int):
    """Obvious per-step reference for transactions and replays."""
    transactions = []
    replays = 0
    requests = 0
    for j in range(trace.num_steps):
        addrs = trace.addresses[j][trace.active[j]]
        if trace.kind is AccessKind.READ:
            addrs = np.unique(addrs)
        counts = {}
        for a in addrs.tolist():
            counts[a % num_banks] = counts.get(a % num_banks, 0) + 1
        requests += sum(counts.values())
        transactions.append(max(counts.values()) if counts else 0)
        replays += sum(c - 1 for c in counts.values())
    return transactions, replays, requests


class TestCountConflictsBasics:
    def test_conflict_free_column(self):
        t = AccessTrace.from_dense(np.array([[0, 1, 2, 3]]))
        r = count_conflicts(t, 4)
        assert r.total_transactions == 1
        assert r.total_replays == 0
        assert r.max_degree == 1

    def test_full_serialization(self):
        t = AccessTrace.from_dense(np.array([[0, 4, 8, 12]]))
        r = count_conflicts(t, 4)
        assert (r.total_transactions, r.total_replays, r.max_degree) == (4, 3, 4)

    def test_broadcast_reads_are_free(self):
        t = AccessTrace.from_dense(np.array([[5, 5, 5, 5]]))
        r = count_conflicts(t, 4)
        assert r.total_transactions == 1
        assert r.num_requests == 1
        assert r.num_accesses == 4

    def test_writes_do_not_broadcast(self):
        t = AccessTrace.from_dense(np.array([[4, 4, 12, 1]]), kind=AccessKind.WRITE)
        r = count_conflicts(t, 4)
        # Bank 0 receives 3 write requests (two to addr 4, one to 12).
        assert r.max_degree == 3

    def test_inactive_lanes_ignored(self):
        t = AccessTrace.from_dense(np.array([[0, -1, -1, 8]]))
        r = count_conflicts(t, 4)
        assert r.num_accesses == 2
        assert r.total_transactions == 2  # both on bank 0

    def test_empty_trace(self):
        t = AccessTrace.from_dense(np.empty((0, 4), dtype=np.int64))
        r = count_conflicts(t, 4)
        assert r.total_transactions == 0
        assert r.max_degree == 0

    def test_all_inactive_step_costs_zero(self):
        t = AccessTrace.from_dense(np.array([[-1, -1], [0, 1]]))
        per_step = step_transactions(t, 2)
        assert per_step.tolist() == [0, 1]

    def test_slowdown_factor(self):
        t = AccessTrace.from_dense(np.array([[0, 4], [1, 2]]))
        r = count_conflicts(t, 4)
        # step 0: 2-way; step 1: conflict free -> 3 cycles / 2 steps
        assert r.slowdown_factor == pytest.approx(1.5)

    def test_replays_per_access(self):
        t = AccessTrace.from_dense(np.array([[0, 4, 8, 1]]))
        r = count_conflicts(t, 4)
        assert r.replays_per_access == pytest.approx(2 / 4)


class TestMergeAndScale:
    def test_merged_adds(self):
        a = count_conflicts(AccessTrace.from_dense(np.array([[0, 4]])), 4)
        b = count_conflicts(AccessTrace.from_dense(np.array([[0, 1]])), 4)
        m = a.merged(b)
        assert m.total_transactions == 3
        assert m.num_steps == 2
        assert m.max_degree == 2

    def test_merged_rejects_bank_mismatch(self):
        a = ConflictReport.empty(4)
        b = ConflictReport.empty(8)
        with pytest.raises(SimulationError):
            a.merged(b)

    def test_scaled(self):
        r = count_conflicts(AccessTrace.from_dense(np.array([[0, 4]])), 4)
        s = r.scaled(3)
        assert s.total_transactions == 6
        assert s.num_steps == 3
        assert s.max_degree == 2

    def test_scaled_zero(self):
        r = count_conflicts(AccessTrace.from_dense(np.array([[0, 4]])), 4)
        assert r.scaled(0).max_degree == 0
        assert r.scaled(0).per_step_transactions.size == 0
        assert r.scaled(0).conflict_free_cycles == 0

    def test_scaled_is_lazy(self):
        # Scaling stores only the period + repeat count; a huge factor
        # must not materialize a huge per-step array.
        r = count_conflicts(
            AccessTrace.from_dense(np.array([[0, 4], [0, 1]])), 4
        )
        s = r.scaled(10**9)
        assert s.step_period.size == r.step_period.size
        assert s.step_repeats == 10**9
        assert s.num_steps == 2 * 10**9
        assert s.total_transactions == r.total_transactions * 10**9
        assert s.conflict_free_cycles == r.conflict_free_cycles * 10**9

    def test_scaled_per_step_materializes_tiled(self):
        r = count_conflicts(AccessTrace.from_dense(np.array([[0, 4], [0, 1]])), 4)
        s = r.scaled(3)
        expected = np.tile(r.per_step_transactions, 3)
        assert s.per_step_transactions.tolist() == expected.tolist()
        assert len(s.per_step_transactions) == s.num_steps

    def test_scaled_then_merged_with_empty_stays_lazy(self):
        r = count_conflicts(AccessTrace.from_dense(np.array([[0, 4]])), 4)
        s = r.scaled(10**6)
        for m in (s.merged(ConflictReport.empty(4)),
                  ConflictReport.empty(4).merged(s)):
            assert m.step_repeats == 10**6
            assert m.step_period.size == 1
            assert m.total_transactions == s.total_transactions

    def test_scaled_then_merged_per_step_semantics(self):
        a = count_conflicts(AccessTrace.from_dense(np.array([[0, 4]])), 4)
        b = count_conflicts(AccessTrace.from_dense(np.array([[0, 1]])), 4)
        m = a.scaled(2).merged(b)
        assert m.per_step_transactions.tolist() == [2, 2, 1]
        assert m.num_steps == 3

    def test_merged_scaled_reports_stay_lazy(self):
        # Regression: merged() used to materialize each side's repeated
        # per-step array (O(steps·repeats) memory). It must instead keep a
        # segment list whose memory is proportional to the *periods* only,
        # even when both sides carry astronomical repeat counts.
        a = count_conflicts(AccessTrace.from_dense(np.array([[0, 4], [0, 1]])), 4)
        b = count_conflicts(AccessTrace.from_dense(np.array([[0, 1]])), 4)
        m = a.scaled(10**9).merged(b.scaled(10**9))
        assert len(m.step_segments) == 2
        assert sum(period.size for period, _ in m.step_segments) == 3
        assert [repeats for _, repeats in m.step_segments] == [10**9, 10**9]
        assert m.num_steps == 3 * 10**9
        assert m.total_transactions == (
            a.total_transactions + b.total_transactions
        ) * 10**9
        assert m.conflict_free_cycles == (
            a.conflict_free_cycles + b.conflict_free_cycles
        ) * 10**9

    def test_merged_chain_keeps_segments_flat(self):
        # Folding many scaled reports (one per round, as the synthesized
        # bench path does) must grow the segment list linearly and never
        # touch the repeat counts.
        m = ConflictReport.empty(4)
        r = count_conflicts(AccessTrace.from_dense(np.array([[0, 4]])), 4)
        for _ in range(50):
            m = m.merged(r.scaled(10**8))
        assert len(m.step_segments) == 50
        assert m.num_steps == 50 * 10**8
        assert all(repeats == 10**8 for _, repeats in m.step_segments)
        assert m.total_transactions == 50 * 10**8 * r.total_transactions

    def test_empty_is_identity(self):
        r = count_conflicts(AccessTrace.from_dense(np.array([[0, 4, 8]])), 4)
        m = ConflictReport.empty(4).merged(r)
        assert m.total_transactions == r.total_transactions


@st.composite
def traces(draw):
    steps = draw(st.integers(min_value=0, max_value=6))
    lanes = draw(st.sampled_from([2, 4, 8]))
    dense = draw(
        hnp.arrays(
            np.int64,
            (steps, lanes),
            elements=st.integers(min_value=-1, max_value=63),
        )
    )
    kind = draw(st.sampled_from([AccessKind.READ, AccessKind.WRITE]))
    if kind is AccessKind.WRITE:
        # CREW: avoid duplicate addresses within a step for write traces.
        for j in range(steps):
            row = dense[j]
            seen = set()
            for i in range(lanes):
                while row[i] >= 0 and int(row[i]) in seen:
                    row[i] += 1
                if row[i] >= 0:
                    seen.add(int(row[i]))
    return AccessTrace.from_dense(dense, kind=kind)


class TestAgainstBruteForce:
    @settings(max_examples=200, deadline=None)
    @given(traces(), st.sampled_from([2, 4, 8, 16]))
    def test_matches_reference(self, trace, num_banks):
        ref_tx, ref_replays, ref_requests = brute_force(trace, num_banks)
        r = count_conflicts(trace, num_banks)
        assert r.per_step_transactions.tolist() == ref_tx
        assert r.total_replays == ref_replays
        assert r.num_requests == ref_requests
        assert r.max_degree == (max(ref_tx) if ref_tx else 0)

    @settings(max_examples=100, deadline=None)
    @given(traces(), st.sampled_from([4, 8]))
    def test_invariants(self, trace, num_banks):
        """Cost bounds that must hold for any trace whatsoever."""
        r = count_conflicts(trace, num_banks)
        # Serialized cycles: at least one per active step, at most the
        # request count (every request fully serialized).
        assert r.conflict_free_cycles <= r.total_transactions <= r.num_requests
        # Replays never exceed requests and are zero iff every step's cost
        # equals... at least: replays <= requests - active steps.
        assert 0 <= r.total_replays <= max(0, r.num_requests - r.conflict_free_cycles)
        # A step's serialization can't exceed its lane count.
        assert r.max_degree <= trace.num_lanes
        # Broadcast can only reduce requests.
        assert r.num_requests <= r.num_accesses
