"""Unit tests for the executable CREW DMM."""

import numpy as np
import pytest

from repro.dmm.machine import DMM, MemoryImage
from repro.dmm.trace import AccessKind, AccessTrace
from repro.errors import SimulationError, ValidationError


class TestMemoryImage:
    def test_from_array_roundtrip(self):
        img = MemoryImage.from_array([5, 6, 7])
        assert np.array_equal(img.read(np.array([2, 0])), [7, 5])

    def test_write(self):
        img = MemoryImage(size=4)
        img.write(np.array([1, 3]), np.array([10, 30]))
        assert img.snapshot().tolist() == [0, 10, 0, 30]

    def test_bounds_check(self):
        img = MemoryImage(size=4)
        with pytest.raises(SimulationError):
            img.read(np.array([4]))
        with pytest.raises(SimulationError):
            img.read(np.array([-1]))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            MemoryImage.from_array(np.zeros((2, 2)))

    def test_from_array_empty(self):
        # Regression: an empty input used to be silently promoted to a
        # 1-word memory, making out-of-bounds reads of address 0 succeed.
        img = MemoryImage.from_array(np.array([], dtype=np.int64))
        assert img.size == 0
        assert img.snapshot().size == 0
        with pytest.raises(SimulationError):
            img.read(np.array([0]))

    def test_empty_image_direct_construction(self):
        img = MemoryImage(size=0)
        assert img.snapshot().tolist() == []
        with pytest.raises(SimulationError):
            img.write(np.array([0]), np.array([1]))
        # Zero-length accesses are trivially in bounds.
        assert img.read(np.array([], dtype=np.int64)).size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            MemoryImage(size=-1)


class TestDMM:
    def test_read_values_and_cycles(self):
        img = MemoryImage.from_array(np.arange(100, 116))
        dmm = DMM(num_processors=4, memory=img)
        trace = AccessTrace.from_dense(np.array([[0, 1, 2, 3], [0, 4, 8, 12]]))
        values, report = dmm.execute(trace)
        assert values[0].tolist() == [100, 101, 102, 103]
        assert values[1].tolist() == [100, 104, 108, 112]
        # Step 0 conflict free (1 cycle) + step 1 fully serialized (4).
        assert dmm.cycles == 5
        assert report.total_transactions == 5

    def test_cycles_accumulate(self):
        img = MemoryImage.from_array(np.arange(8))
        dmm = DMM(num_processors=4, memory=img)
        t = AccessTrace.from_dense(np.array([[0, 1, 2, 3]]))
        dmm.execute(t)
        dmm.execute(t)
        assert dmm.cycles == 2

    def test_crew_write_violation(self):
        img = MemoryImage(size=16)
        dmm = DMM(num_processors=4, memory=img)
        trace = AccessTrace.from_dense(
            np.array([[3, 3, 1, 2]]), kind=AccessKind.WRITE
        )
        with pytest.raises(SimulationError, match="CREW"):
            dmm.execute(trace)

    def test_distinct_writes_commit(self):
        img = MemoryImage(size=16)
        dmm = DMM(num_processors=4, memory=img)
        trace = AccessTrace.from_dense(
            np.array([[3, 7, 1, 2]]), kind=AccessKind.WRITE
        )
        dmm.execute(trace)
        snap = img.snapshot()
        assert snap[3] == 3 and snap[7] == 7

    def test_lane_count_mismatch(self):
        dmm = DMM(num_processors=4, memory=MemoryImage(size=4))
        with pytest.raises(SimulationError):
            dmm.execute(AccessTrace.from_dense(np.array([[0, 1]])))

    def test_concurrent_same_address_read_is_one_cycle(self):
        img = MemoryImage.from_array(np.arange(8))
        dmm = DMM(num_processors=4, memory=img)
        values, _ = dmm.execute(AccessTrace.from_dense(np.array([[5, 5, 5, 5]])))
        assert dmm.cycles == 1
        assert values[0].tolist() == [5, 5, 5, 5]
