"""Unit tests for the content-addressed conflict-report memo.

The memo's correctness contract is split in two: the *keys* must separate
every scoring situation that could produce a different report (context
fields, pattern rows, the global rounds' A-window length), and the *table*
must behave as a bounded FIFO cache with faithful hit/miss/byte
accounting. End-to-end bit-identity of memoized sorts lives in
``tests/sort/test_memoized_scoring.py``; this file pins the layer below.
"""

import numpy as np
import pytest

from repro.dmm.conflicts import ConflictReport
from repro.dmm.memo import CONTEXT_FIELDS, ConflictMemo, MemoStats
from repro.errors import ValidationError

CTX = ConflictMemo.context(
    "block", num_banks=4, elements_per_thread=3, run_length=6, padding=0
)


def _pair(num_banks=4):
    empty = ConflictReport.empty(num_banks)
    return (empty, empty)


class TestContext:
    def test_distinguishes_every_field(self):
        base = dict(
            num_banks=4, elements_per_thread=3, run_length=6, padding=0
        )
        contexts = {ConflictMemo.context("block", **base)}
        contexts.add(ConflictMemo.context("global", **base))
        for field, bumped in [
            ("num_banks", 8),
            ("elements_per_thread", 5),
            ("run_length", 12),
            ("padding", 1),
            ("mitigation", "cfree-sort"),
        ]:
            contexts.add(
                ConflictMemo.context("block", **{**base, field: bumped})
            )
        assert len(contexts) == 7  # every variation yields a distinct prefix

    def test_context_fields_match_signature(self):
        """``CONTEXT_FIELDS`` is the single source of truth: it must list
        exactly the parameters :meth:`ConflictMemo.context` accepts, in
        order, so a field added to one but not the other is caught here
        rather than by a silently-narrower digest."""
        import inspect

        params = tuple(inspect.signature(ConflictMemo.context).parameters)
        assert params == CONTEXT_FIELDS

    def test_context_byte_format_is_stable(self):
        """The serialized prefix is a compatibility surface (changing it
        invalidates nothing on disk, but the engine layer fingerprints the
        field list so warm runners retire on change — the *format* should
        only move together with a deliberate CONTEXT_FIELDS bump)."""
        assert CTX == b"block|w=4|E=3|L=6|pad=0|mit=none|"

    def test_scoring_identity_is_not_a_context_field(self):
        """Deliberate absence: the scoring backends (vectorized / loop /
        fused, either fused backend) are bit-identical by contract, so
        memo entries must be shared across them — a ``scoring`` field
        would split the hit pool for no correctness gain."""
        assert "scoring" not in CONTEXT_FIELDS
        assert "backend" not in CONTEXT_FIELDS

    def test_runner_key_folds_context_fields(self, monkeypatch):
        """The engine's warm-runner fingerprint embeds CONTEXT_FIELDS, so
        reshaping what the memo digests retires every cached runner."""
        from repro.engine.tasks import WorkItem, runner_key
        from repro.gpu.device import QUADRO_M4000
        from repro.sort.config import SortConfig

        item = WorkItem(
            config=SortConfig(
                elements_per_thread=3, block_size=32, warp_size=32
            ),
            device=QUADRO_M4000,
            input_name="worst-case",
            num_elements=2880,
        )
        before = runner_key(item)
        import repro.dmm.memo as memo_module

        monkeypatch.setattr(
            memo_module, "CONTEXT_FIELDS", CONTEXT_FIELDS + ("extra",)
        )
        assert runner_key(item) != before

    def test_context_changes_digest(self):
        rows = np.arange(8, dtype=np.int64).reshape(1, 8)
        other = ConflictMemo.context(
            "global", num_banks=4, elements_per_thread=3, run_length=6, padding=0
        )
        assert ConflictMemo.tile_digests(CTX, rows) != ConflictMemo.tile_digests(
            other, rows
        )


class TestTileDigests:
    def test_equal_rows_equal_digests(self):
        rows = np.array([[0, 1, 2, 3], [3, 2, 1, 0], [0, 1, 2, 3]])
        d = ConflictMemo.tile_digests(CTX, rows)
        assert d[0] == d[2]
        assert d[0] != d[1]

    def test_batched_matches_per_row(self):
        """The adjacent-run dedup is an optimization, not a semantic: the
        batched digests must equal hashing each row on its own."""
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 16, size=(12, 8))
        rows[3] = rows[2]  # adjacent duplicate (the dedup fast path)
        rows[9] = rows[2]  # non-adjacent duplicate
        batched = ConflictMemo.tile_digests(CTX, rows)
        single = [
            ConflictMemo.tile_digests(CTX, rows[i : i + 1])[0]
            for i in range(rows.shape[0])
        ]
        assert batched == single
        assert batched[3] == batched[2] == batched[9]

    def test_extra_column_changes_digest(self):
        """Global rounds hash the per-block A-window length alongside the
        pattern: same permutation, different window split, different key."""
        rows = np.array([[0, 1, 2, 3], [0, 1, 2, 3]])
        plain = ConflictMemo.tile_digests(CTX, rows)
        with_na = ConflictMemo.tile_digests(
            CTX, rows, extra=np.array([2, 3])
        )
        assert plain[0] == plain[1]
        assert with_na[0] != with_na[1]
        assert with_na[0] not in plain

    def test_extra_batched_matches_per_row(self):
        rows = np.array([[5, 1], [5, 1], [2, 2]])
        extra = np.array([1, 1, 2])
        batched = ConflictMemo.tile_digests(CTX, rows, extra=extra)
        single = [
            ConflictMemo.tile_digests(
                CTX, rows[i : i + 1], extra=extra[i : i + 1]
            )[0]
            for i in range(3)
        ]
        assert batched == single

    def test_dtype_insensitive(self):
        rows32 = np.arange(6, dtype=np.int32).reshape(2, 3)
        rows64 = rows32.astype(np.int64)
        assert ConflictMemo.tile_digests(CTX, rows32) == ConflictMemo.tile_digests(
            CTX, rows64
        )

    def test_empty_rows(self):
        assert ConflictMemo.tile_digests(CTX, np.empty((0, 4), dtype=np.int64)) == []

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            ConflictMemo.tile_digests(CTX, np.arange(4))

    def test_rejects_bad_extra_shape(self):
        rows = np.zeros((2, 4), dtype=np.int64)
        with pytest.raises(ValidationError):
            ConflictMemo.tile_digests(CTX, rows, extra=np.array([1, 2, 3]))


class TestRoundDigest:
    def test_order_sensitive(self):
        a, b = b"a" * 16, b"b" * 16
        assert ConflictMemo.round_digest(CTX, [a, b]) != ConflictMemo.round_digest(
            CTX, [b, a]
        )

    def test_multiplicity_sensitive(self):
        a = b"a" * 16
        assert ConflictMemo.round_digest(CTX, [a]) != ConflictMemo.round_digest(
            CTX, [a, a]
        )


class TestTable:
    def test_miss_then_hit(self):
        memo = ConflictMemo()
        assert memo.get_tile(b"k") is None
        memo.put_tile(b"k", _pair())
        assert memo.get_tile(b"k") == _pair()
        assert (memo.hits, memo.misses) == (1, 1)

    def test_tile_and_round_tables_independent(self):
        memo = ConflictMemo()
        memo.put_tile(b"k", _pair())
        assert memo.get_round(b"k") is None  # same key, different table

    def test_put_is_idempotent(self):
        memo = ConflictMemo()
        memo.put_tile(b"k", _pair())
        before = memo.stored_bytes
        memo.put_tile(b"k", _pair())
        assert memo.stored_bytes == before
        assert memo.stats().tile_entries == 1

    def test_fifo_eviction(self):
        memo = ConflictMemo(max_entries=2)
        for key in (b"a", b"b", b"c"):
            memo.put_tile(key, _pair())
        assert memo.stats().tile_entries == 2
        assert memo.get_tile(b"a") is None  # oldest evicted
        assert memo.get_tile(b"b") is not None
        assert memo.get_tile(b"c") is not None

    def test_eviction_keeps_bytes_consistent(self):
        memo = ConflictMemo(max_entries=1)
        memo.put_tile(b"a", _pair())
        one_entry = memo.stored_bytes
        assert one_entry > 0
        memo.put_tile(b"b", _pair())
        assert memo.stored_bytes == one_entry

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValidationError):
            ConflictMemo(max_entries=0)


class TestStats:
    def test_delta_baseline(self):
        memo = ConflictMemo()
        memo.get_tile(b"x")
        memo.put_tile(b"x", _pair())
        memo.get_tile(b"x")
        delta = memo.stats(hits_base=1, misses_base=1)
        assert (delta.hits, delta.misses) == (0, 0)
        full = memo.stats()
        assert (full.hits, full.misses) == (1, 1)
        assert full.hit_rate == 0.5

    def test_hit_rate_unused(self):
        assert ConflictMemo().stats().hit_rate == 0.0

    def test_str_mentions_everything(self):
        text = str(MemoStats(3, 1, 2, 1, 4096))
        for fragment in ("3 hits", "1 misses", "75%", "2 tile", "1 round",
                         "4,096 bytes"):
            assert fragment in text

    def test_process_stats_aggregate_across_instances(self):
        before = ConflictMemo.process_stats()
        a, b = ConflictMemo(), ConflictMemo()
        a.get_tile(b"x")
        a.put_tile(b"x", _pair())
        b.get_round(b"y")
        b.put_round(b"y", _pair())
        after = ConflictMemo.process_stats()
        assert after.misses - before.misses == 2
        assert after.tile_entries - before.tile_entries == 1
        assert after.round_entries - before.round_entries == 1
        assert after.stored_bytes > before.stored_bytes
