"""Algebraic property tests for ConflictReport combination."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dmm.conflicts import ConflictReport, count_conflicts
from repro.dmm.trace import AccessTrace


@st.composite
def reports(draw):
    steps = draw(st.integers(min_value=0, max_value=5))
    dense = draw(
        hnp.arrays(np.int64, (steps, 4),
                   elements=st.integers(min_value=-1, max_value=31))
    )
    return count_conflicts(AccessTrace.from_dense(dense), 4)


EXTENSIVE = (
    "num_steps",
    "num_accesses",
    "num_requests",
    "total_transactions",
    "total_replays",
)


class TestMergeAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(reports(), reports())
    def test_merge_adds_extensive_counters(self, a, b):
        m = a.merged(b)
        for attr in EXTENSIVE:
            assert getattr(m, attr) == getattr(a, attr) + getattr(b, attr)
        assert m.max_degree == max(a.max_degree, b.max_degree)

    @settings(max_examples=50, deadline=None)
    @given(reports(), reports(), reports())
    def test_merge_associative_on_counters(self, a, b, c):
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        for attr in EXTENSIVE + ("max_degree",):
            assert getattr(left, attr) == getattr(right, attr)

    @settings(max_examples=50, deadline=None)
    @given(reports())
    def test_empty_is_identity(self, r):
        m = ConflictReport.empty(4).merged(r)
        for attr in EXTENSIVE + ("max_degree",):
            assert getattr(m, attr) == getattr(r, attr)


class TestScaleAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(reports(), st.integers(min_value=0, max_value=5))
    def test_scaled_equals_repeated_merge(self, r, k):
        scaled = r.scaled(k)
        repeated = ConflictReport.empty(4)
        for _ in range(k):
            repeated = repeated.merged(r)
        for attr in EXTENSIVE + ("max_degree",):
            assert getattr(scaled, attr) == getattr(repeated, attr)

    @settings(max_examples=50, deadline=None)
    @given(reports())
    def test_derived_metrics_consistent(self, r):
        assert r.conflict_free_cycles == int(
            np.count_nonzero(r.per_step_transactions)
        )
        if r.num_accesses:
            assert r.replays_per_access == pytest.approx(
                r.total_replays / r.num_accesses
            )
        assert r.slowdown_factor >= 1.0 or r.conflict_free_cycles == 0
