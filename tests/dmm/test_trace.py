"""Unit tests for repro.dmm.trace."""

import numpy as np
import pytest

from repro.dmm.trace import NO_ACCESS, AccessKind, AccessTrace, TraceBuilder
from repro.errors import SimulationError, ValidationError


class TestAccessTrace:
    def test_from_dense_masks_negatives(self):
        t = AccessTrace.from_dense(np.array([[0, -1, 2]]))
        assert t.num_steps == 1
        assert t.num_lanes == 3
        assert t.num_accesses == 2
        assert not t.active[0, 1]

    def test_from_dense_promotes_1d(self):
        t = AccessTrace.from_dense(np.array([1, 2, 3]))
        assert t.num_steps == 1

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            AccessTrace(
                addresses=np.zeros((1, 2, 3), dtype=np.int64),
                active=np.ones((1, 2, 3), dtype=bool),
            )

    def test_rejects_mismatched_mask(self):
        with pytest.raises(ValidationError):
            AccessTrace(
                addresses=np.zeros((2, 3), dtype=np.int64),
                active=np.ones((3, 2), dtype=bool),
            )

    def test_rejects_negative_active_address(self):
        with pytest.raises(ValidationError):
            AccessTrace(
                addresses=np.full((1, 2), -5, dtype=np.int64),
                active=np.ones((1, 2), dtype=bool),
            )

    def test_concat(self):
        a = AccessTrace.from_dense(np.array([[0, 1]]))
        b = AccessTrace.from_dense(np.array([[2, 3], [4, 5]]))
        c = a.concat(b)
        assert c.num_steps == 3
        assert c.addresses[2, 1] == 5

    def test_concat_rejects_width_mismatch(self):
        a = AccessTrace.from_dense(np.array([[0, 1]]))
        b = AccessTrace.from_dense(np.array([[0, 1, 2]]))
        with pytest.raises(SimulationError):
            a.concat(b)

    def test_concat_rejects_kind_mismatch(self):
        a = AccessTrace.from_dense(np.array([[0, 1]]), kind=AccessKind.READ)
        b = AccessTrace.from_dense(np.array([[0, 1]]), kind=AccessKind.WRITE)
        with pytest.raises(SimulationError):
            a.concat(b)


class TestTraceBuilder:
    def test_builds_steps_in_order(self):
        builder = TraceBuilder(num_lanes=3)
        builder.add_step([0, 1, 2])
        builder.add_step([NO_ACCESS, 4, 5])
        t = builder.build()
        assert t.num_steps == 2
        assert t.num_accesses == 5

    def test_empty_build(self):
        t = TraceBuilder(num_lanes=4).build()
        assert t.num_steps == 0
        assert t.num_lanes == 4

    def test_rejects_wrong_width(self):
        builder = TraceBuilder(num_lanes=3)
        with pytest.raises(ValidationError):
            builder.add_step([0, 1])
