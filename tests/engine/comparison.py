"""Shared config/input matrix and bit-identity comparators.

Moved from ``tests/sort/test_pairwise_equivalence.py`` when the
per-scoring equivalence matrices were collapsed into the engine suite
(``tests/engine/test_engine_equivalence.py``); the sort-layer tests
import the helpers from here so every suite compares results the same
way: same sorted values, same round structure, same conflict counters,
same per-step cost arrays.
"""

import numpy as np

from repro.sort.config import SortConfig

CONFIGS = {
    "tiny": SortConfig(elements_per_thread=3, block_size=8, warp_size=4),
    "small-e": SortConfig(elements_per_thread=3, block_size=16, warp_size=8),
    "large-e": SortConfig(elements_per_thread=5, block_size=16, warp_size=8),
    "pow2-e": SortConfig(elements_per_thread=4, block_size=16, warp_size=8),
}

#: Every input family the generators produce, structured and not.
INPUTS = ["random", "sorted", "reverse", "few-unique", "sawtooth", "worst-case"]

#: The analytic-eligible constructed families (kept in sync with
#: ``repro.analytic.ANALYTIC_FAMILIES`` by ``test_engine_equivalence``).
FAMILIES = ["reverse", "sawtooth", "sorted", "worst-case"]


def assert_reports_identical(a, b, context):
    assert a.num_banks == b.num_banks, context
    assert a.num_steps == b.num_steps, context
    assert a.num_accesses == b.num_accesses, context
    assert a.num_requests == b.num_requests, context
    assert a.total_transactions == b.total_transactions, context
    assert a.total_replays == b.total_replays, context
    assert a.max_degree == b.max_degree, context
    np.testing.assert_array_equal(
        a.per_step_transactions, b.per_step_transactions, err_msg=context
    )


def assert_results_identical(rv, rl):
    np.testing.assert_array_equal(rv.values, rl.values)
    assert len(rv.rounds) == len(rl.rounds)
    for sv, sl in zip(rv.rounds, rl.rounds):
        assert sv.label == sl.label
        assert sv.kind == sl.kind
        assert sv.run_length == sl.run_length
        assert sv.blocks_total == sl.blocks_total
        assert sv.blocks_scored == sl.blocks_scored
        assert sv.compute_instructions == sl.compute_instructions
        assert sv.global_traffic == sl.global_traffic
        assert_reports_identical(sv.merge_report, sl.merge_report, sv.label)
        assert_reports_identical(
            sv.partition_report, sl.partition_report, sv.label
        )
        assert_reports_identical(sv.staging_report, sl.staging_report, sv.label)
