"""Every registered engine against the per-tile loop oracle.

This suite replaces the per-pair equivalence matrices that used to live
in ``tests/sort/test_pairwise_equivalence.py`` (loop vs vectorized),
``tests/sort/test_memoized_scoring.py`` (memoized vs both), and
``tests/sort/test_analytic_equivalence.py`` (three-way): one
parametrized matrix runs *every* engine in the registry — including the
process-pool and service engines, which never had equivalence coverage —
over the four constructed families, with and without shared-memory
padding, full and sampled scoring, and asserts bit-identity with
``scoring="loop"``, the original per-tile reference implementation.

Alongside the sort matrix:

* random-input (non-analytic) coverage for every simulating engine;
* the analytic engine's loud rejection of unstructured inputs;
* point-plan identity across every engine (the same ``WorkItem`` batch
  produces equal ``BenchPoint`` lists serially, pooled, and served);
* the unified-default regressions: ``WorkItem``, ``SweepRunner``, and
  the registry agree on ``DEFAULT_SCORING``, serial and pooled sweeps
  resolve the same engine per point, and a default runner routes
  analytic-eligible points closed-form (its memo stays untouched).
"""

import asyncio
import threading

import pytest

from repro.analytic import ANALYTIC_FAMILIES
from repro.bench.runner import SweepRunner
from repro.engine import SortTask, WorkItem, create_engine, execute_items
from repro.engine.registry import DEFAULT_SCORING, engine_names
from repro.errors import ValidationError
from repro.gpu.device import QUADRO_M4000
from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort
from tests.engine.comparison import (
    CONFIGS,
    FAMILIES,
    INPUTS,
    assert_results_identical,
)

CFG = CONFIGS["small-e"]
N = CFG.tile_size * 8

#: Point plans run against a real device spec, whose warp size the
#: config must match (the sort-plan matrix has no device, so it keeps
#: the smaller, faster warp-8 config).
PCFG = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)

ENGINE_NAMES = engine_names()
SIMULATING_ENGINES = [name for name in ENGINE_NAMES if name != "analytic"]


def test_family_list_matches_analytic_registry():
    assert sorted(ANALYTIC_FAMILIES) == FAMILIES


@pytest.fixture(scope="module")
def engines():
    """name → warm engine instance, every registered engine included.

    The service engine talks to a real daemon on a loopback ephemeral
    port (same harness as ``tests/service/conftest.py``); the pool
    engine owns a two-worker pool for the module.
    """
    from repro.service.server import ServiceConfig, run_service

    holder = {}
    ready = threading.Event()
    config = ServiceConfig(
        port=0, request_timeout=60.0, drain_timeout=15.0
    )

    def runner():
        holder["drained"] = asyncio.run(
            run_service(
                config,
                on_started=lambda s: (holder.update(service=s), ready.set()),
            )
        )

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(15), "service failed to start"
    service = holder["service"]

    built = {}
    for name in ENGINE_NAMES:
        if name == "pool":
            built[name] = create_engine(name, jobs=2)
        elif name == "service":
            built[name] = create_engine(
                name, url=f"http://127.0.0.1:{service.port}", timeout=90.0
            )
        elif name == "sharded":
            # Degenerate single-node ring over the same daemon: pins the
            # fingerprint-routed wire path into the bit-identity matrix
            # (multi-shard routing semantics live in tests/service/).
            built[name] = create_engine(
                name, urls=[f"http://127.0.0.1:{service.port}"], timeout=90.0
            )
        else:
            built[name] = create_engine(name)
    try:
        yield built
    finally:
        for engine in built.values():
            engine.close()
        if thread.is_alive():
            service.request_shutdown()
            thread.join(30)
        assert not thread.is_alive(), "service thread failed to exit"


_ORACLE_CACHE = {}
_MATRIX_ORACLE = {}


def loop_oracle(input_name, *, padding, score_blocks):
    """The reference result, cached per matrix cell across engines."""
    key = (input_name, padding, score_blocks)
    if key not in _ORACLE_CACHE:
        data = generate(input_name, CFG, N, seed=0)
        _ORACLE_CACHE[key] = PairwiseMergeSort(
            CFG, padding=padding, scoring="loop"
        ).sort(data, score_blocks=score_blocks, seed=0)
    return _ORACLE_CACHE[key]


class TestSortPlanBitIdentity:
    @pytest.mark.parametrize("score_blocks", [None, 2], ids=["full", "sampled"])
    @pytest.mark.parametrize("padding", [0, 1])
    @pytest.mark.parametrize("input_name", FAMILIES)
    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    def test_constructed_families(
        self, engines, engine_name, input_name, padding, score_blocks
    ):
        result = engines[engine_name].run_sort(
            SortTask(
                config=CFG,
                input_name=input_name,
                num_elements=N,
                padding=padding,
                score_blocks=score_blocks,
                seed=0,
            )
        )
        assert_results_identical(
            result,
            loop_oracle(
                input_name, padding=padding, score_blocks=score_blocks
            ),
        )

    @pytest.mark.parametrize("score_blocks", [None, 2], ids=["full", "sampled"])
    @pytest.mark.parametrize("engine_name", SIMULATING_ENGINES)
    def test_random_input(self, engines, engine_name, score_blocks):
        """Unstructured inputs force the simulated path everywhere —
        including through the "auto"-scored engines — with and without
        block sampling (whose RNG draws must line up across engines)."""
        result = engines[engine_name].run_sort(
            SortTask(
                config=CFG,
                input_name="random",
                num_elements=N,
                score_blocks=score_blocks,
                seed=0,
            )
        )
        assert_results_identical(
            result,
            loop_oracle("random", padding=0, score_blocks=score_blocks),
        )

    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("input_name", INPUTS)
    @pytest.mark.parametrize(
        "engine_name",
        ["inline", "inline-vectorized", "inline-memoized", "inline-fused"],
    )
    def test_inline_matrix_all_configs_and_inputs(
        self, engines, engine_name, config_name, input_name
    ):
        """The historical loop-vs-vectorized and loop-vs-memoized
        matrices (every input family × every E regime), now phrased as
        engine rows — the "auto" engine rides along so its per-task
        routing is exercised on eligible and ineligible inputs alike."""
        cfg = CONFIGS[config_name]
        n = cfg.tile_size * 8
        result = engines[engine_name].run_sort(
            SortTask(config=cfg, input_name=input_name, num_elements=n, seed=0)
        )
        key = (config_name, input_name)
        if key not in _MATRIX_ORACLE:
            data = generate(input_name, cfg, n, seed=0)
            _MATRIX_ORACLE[key] = PairwiseMergeSort(
                cfg, scoring="loop"
            ).sort(data, seed=0)
        assert_results_identical(result, _MATRIX_ORACLE[key])

    def test_analytic_rejects_random(self, engines):
        with pytest.raises(ValidationError):
            engines["analytic"].run_sort(
                SortTask(
                    config=CFG, input_name="random", num_elements=N, seed=0
                )
            )

    @pytest.mark.parametrize(
        "mitigation", ["none", "padding:1", "cfree-sort", "cfree-permute"]
    )
    @pytest.mark.parametrize("engine_name", SIMULATING_ENGINES)
    def test_mitigations_bit_identical_per_engine(
        self, engines, engine_name, mitigation
    ):
        """The matrix acceptance bar: every mitigation layout produces
        bit-identical results through every simulating engine — inline,
        memoized, fused, pool, and the served/sharded wire paths. The
        worst-case family is analytic-eligible, so this also pins that
        "auto" routing never hands an unmodeled layout to the closed
        form."""
        result = engines[engine_name].run_sort(
            SortTask(
                config=CFG,
                input_name="worst-case",
                num_elements=N,
                mitigation=mitigation,
                seed=0,
            )
        )
        key = ("mitigation", mitigation)
        if key not in _MATRIX_ORACLE:
            data = generate("worst-case", CFG, N, seed=0)
            _MATRIX_ORACLE[key] = PairwiseMergeSort(
                CFG, scoring="loop", mitigation=mitigation
            ).sort(data, seed=0)
        assert_results_identical(result, _MATRIX_ORACLE[key])

    def test_analytic_rejects_unmodeled_layouts(self, engines):
        with pytest.raises(ValidationError):
            engines["analytic"].run_sort(
                SortTask(
                    config=CFG,
                    input_name="worst-case",
                    num_elements=N,
                    mitigation="cfree-sort",
                    seed=0,
                )
            )

    def test_plan_batch_matches_individual_runs(self, engines):
        """A multi-task plan returns results in task order, equal to
        one-at-a-time execution."""
        tasks = [
            SortTask(config=CFG, input_name=name, num_elements=N, seed=0)
            for name in FAMILIES
        ]
        batched = engines["inline"].plan(tasks).execute()
        for task, result in zip(tasks, batched):
            assert_results_identical(
                result,
                loop_oracle(task.input_name, padding=0, score_blocks=None),
            )


def make_items(scoring=DEFAULT_SCORING, input_names=("worst-case", "random")):
    return [
        WorkItem(
            config=PCFG,
            device=QUADRO_M4000,
            input_name=name,
            num_elements=n,
            exact_threshold=PCFG.tile_size * 8,
            score_blocks=4,
            seed=0,
            scoring=scoring,
        )
        for name in input_names
        for n in (PCFG.tile_size * 2, PCFG.tile_size * 4)
    ]


class TestPointPlanIdentity:
    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    def test_all_engines_produce_equal_points(self, engines, engine_name):
        """The same WorkItem batch (registry-default scoring) yields
        equal BenchPoints through every engine. The engines whose own
        ``scoring`` knob differs (inline-loop etc.) are included on
        purpose: point plans are governed by each item's ``scoring``,
        never by the engine's sort-plan default."""
        items = make_items()
        expected = execute_items(items, jobs=1)
        assert engines[engine_name].run_points(items) == expected

    def test_items_match_loop_scored_items(self, engines):
        """Registry-default items equal the same items pinned to the
        loop oracle — the point-level equivalence anchor."""
        assert execute_items(make_items()) == execute_items(
            make_items(scoring="loop")
        )

    def test_progress_events_cover_every_point(self, engines):
        events = []
        items = make_items(input_names=("worst-case",))
        engines["inline"].run_points(items, progress=events.append)
        assert [e.done for e in events] == [1, 2]
        assert all(e.total == len(items) for e in events)


class TestUnifiedScoringDefault:
    """Satellite regression: one default, one router, every entry point."""

    def test_defaults_agree(self):
        assert WorkItem.__dataclass_fields__["scoring"].default \
            == DEFAULT_SCORING
        runner = SweepRunner(PCFG, QUADRO_M4000)
        assert runner.scoring == DEFAULT_SCORING

    def test_serial_and_pooled_sweeps_resolve_identically(self):
        """The historical bug: WorkItem defaulted to a different scoring
        than SweepRunner, so ``--jobs`` silently changed the executed
        path. Serial and pooled execution of default items must match."""
        items = make_items()
        assert execute_items(items, jobs=1) == execute_items(items, jobs=2)

    def test_default_runner_routes_analytic(self):
        """A default-constructed runner sends analytic-eligible points
        through the closed form: the instrumented sort still runs once,
        but the memo never sees a lookup."""
        runner = SweepRunner(
            PCFG,
            QUADRO_M4000,
            exact_threshold=PCFG.tile_size * 8,
            score_blocks=4,
        )
        runner.run_point("worst-case", PCFG.tile_size * 2)
        assert runner.instrumented_sorts == 1
        assert runner.memo.hits == 0 and runner.memo.misses == 0
