"""The engine registry: names, factories, and the one auto-router."""

import pytest

from repro.engine import create_engine
from repro.engine.registry import (
    DEFAULT_SCORING,
    SCORING_MODES,
    SIMULATOR_SCORINGS,
    check_scoring,
    engine_for_scoring,
    engine_names,
    register_engine,
    resolve_scoring,
    scoring_for_engine,
)
from repro.errors import ValidationError
from tests.engine.comparison import CONFIGS

CFG = CONFIGS["small-e"]


class TestNames:
    def test_builtins_registered(self):
        assert set(engine_names()) == {
            "analytic",
            "inline",
            "inline-fused",
            "inline-loop",
            "inline-memoized",
            "inline-vectorized",
            "pool",
            "service",
            "sharded",
        }

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValidationError, match="unknown engine"):
            create_engine("gpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_engine("inline", lambda: None)

    def test_replace_allows_override(self):
        from repro.engine.inline import _inline_factory

        sentinel = object()
        register_engine("inline-loop", lambda: sentinel, replace=True)
        try:
            assert create_engine("inline-loop") is sentinel
        finally:
            register_engine(
                "inline-loop",
                _inline_factory("inline-loop", "loop", False),
                replace=True,
            )

    def test_engine_name_attribute_matches_registry(self):
        for name in engine_names():
            if name in ("pool", "service", "sharded"):
                continue  # pool spawns workers, service/sharded need daemons
            assert create_engine(name).name == name


class TestScoringValidation:
    def test_modes_are_superset_of_simulator_scorings(self):
        assert SCORING_MODES == ("auto",) + SIMULATOR_SCORINGS
        assert DEFAULT_SCORING in SCORING_MODES

    def test_check_scoring_accepts_modes(self):
        for mode in SCORING_MODES:
            assert check_scoring(mode) == mode

    def test_check_scoring_rejects_unknown(self):
        with pytest.raises(ValidationError, match="must be one of"):
            check_scoring("fast")

    def test_auto_needs_allow_auto(self):
        with pytest.raises(ValidationError):
            check_scoring("auto", allow_auto=False)

    def test_field_name_in_message(self):
        with pytest.raises(ValidationError, match="'scoring'"):
            check_scoring("fast", field="'scoring'")


class TestAutoRouting:
    def test_eligible_constructed_family_routes_analytic(self):
        assert resolve_scoring(
            "auto",
            config=CFG,
            input_name="worst-case",
            num_elements=CFG.tile_size * 8,
        ) == "analytic"

    def test_random_routes_fused(self):
        assert resolve_scoring(
            "auto",
            config=CFG,
            input_name="random",
            num_elements=CFG.tile_size * 8,
        ) == "fused"

    def test_explicit_modes_pass_through(self):
        for mode in SIMULATOR_SCORINGS:
            assert resolve_scoring(
                mode, config=CFG, input_name="random", num_elements=64
            ) == mode


class TestScoringEngineMapping:
    def test_round_trip(self):
        for scoring in SCORING_MODES:
            for memoized in (True, False):
                name = engine_for_scoring(scoring, memoized=memoized)
                fields = scoring_for_engine(name)
                # The engine's wire fields reproduce the scoring (modulo
                # memo collapsing for modes that cannot memoize).
                assert fields["scoring"] == scoring or scoring in (
                    "loop",
                    "analytic",
                    "auto",
                )

    def test_vectorized_memo_split(self):
        assert engine_for_scoring("vectorized", memoized=True) \
            == "inline-memoized"
        assert engine_for_scoring("vectorized", memoized=False) \
            == "inline-vectorized"

    def test_pool_and_service_have_no_wire_equivalent(self):
        for name in ("pool", "service"):
            with pytest.raises(ValidationError, match="no wire equivalent"):
                scoring_for_engine(name)

    def test_unknown_engine_name_rejected(self):
        with pytest.raises(ValidationError):
            scoring_for_engine("gpu")
