"""The deprecated ``repro.bench.parallel`` surface stays importable.

External callers import ``WorkItem`` / ``sweep_items`` / ``run_points``
from ``repro.bench.parallel``; the engine refactor moved the
implementations to ``repro.engine``. The shim must re-export the *same*
objects (so isinstance/equality across the two import paths holds) and
``run_points`` must warn exactly once per process before delegating.
"""

import warnings

import pytest

import repro.bench.parallel as parallel
from repro.engine import dispatch, tasks
from repro.gpu.device import QUADRO_M4000
from repro.sort.config import SortConfig

CFG = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)


class TestReExportIdentity:
    def test_types_are_the_same_objects(self):
        assert parallel.WorkItem is tasks.WorkItem
        assert parallel.ProgressEvent is tasks.ProgressEvent
        assert parallel.sweep_items is tasks.sweep_items
        assert parallel.cache_ref is tasks.cache_ref

    def test_bench_package_exports_the_same(self):
        import repro.bench as bench

        assert bench.WorkItem is tasks.WorkItem
        assert bench.sweep_items is tasks.sweep_items


def make_items():
    return tasks.sweep_items(
        CFG,
        QUADRO_M4000,
        ("worst-case",),
        [CFG.tile_size * 2],
        exact_threshold=CFG.tile_size * 8,
        score_blocks=4,
    )


class TestRunPointsShim:
    @pytest.fixture(autouse=True)
    def reset_warned_flag(self):
        was = parallel._DEPRECATION_WARNED
        parallel._DEPRECATION_WARNED = False
        yield
        parallel._DEPRECATION_WARNED = was

    def test_warns_deprecation_exactly_once(self):
        items = make_items()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = parallel.run_points(items)
            second = parallel.run_points(items)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "execute_items" in str(deprecations[0].message)
        assert first == second

    def test_delegates_to_execute_items(self):
        items = make_items()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = parallel.run_points(items)
        assert shimmed == dispatch.execute_items(items)
