"""Unit tests for the device catalog."""

import pytest

from repro.errors import ValidationError
from repro.gpu.device import (
    DEVICES,
    GTX_770,
    QUADRO_M4000,
    RTX_2080_TI,
    DeviceSpec,
    get_device,
)


class TestCatalog:
    def test_paper_core_counts(self):
        """Section IV-A: 1664 cores / 13 SMs and 4352 cores / 68 SMs."""
        assert QUADRO_M4000.num_cores == 1664
        assert QUADRO_M4000.num_sms == 13
        assert RTX_2080_TI.num_cores == 4352
        assert RTX_2080_TI.num_sms == 68

    def test_compute_capabilities(self):
        assert QUADRO_M4000.compute_capability == (5, 2)
        assert RTX_2080_TI.compute_capability == (7, 5)
        assert GTX_770.compute_capability == (3, 0)

    def test_warp_is_banks(self):
        for dev in DEVICES.values():
            assert dev.num_banks == dev.warp_size == 32

    def test_rtx_resident_thread_limit(self):
        """Paper: 'up to 1024 resident threads per SM' on the RTX 2080 Ti."""
        assert RTX_2080_TI.max_threads_per_sm == 1024
        assert RTX_2080_TI.max_warps_per_sm == 32

    def test_global_capacity(self):
        """8 GB and 11 GB (paper footnote: GB = 1e9 B)."""
        assert QUADRO_M4000.global_mem_bytes == 8 * 10**9
        assert RTX_2080_TI.global_mem_bytes == 11 * 10**9


class TestFitsInGlobal:
    def test_double_buffering_accounted(self):
        # 1e9 elements x 4 B x 2 buffers = 8 GB: exactly fits the M4000.
        assert QUADRO_M4000.fits_in_global(10**9)
        assert not QUADRO_M4000.fits_in_global(10**9 + 1)


class TestGetDevice:
    def test_lookup_variants(self):
        assert get_device("Quadro M4000") is QUADRO_M4000
        assert get_device("quadro-m4000") is QUADRO_M4000
        assert get_device("RTX_2080_TI") is RTX_2080_TI

    def test_unknown_raises_with_catalog(self):
        with pytest.raises(ValidationError, match="known:"):
            get_device("H100")


class TestValidation:
    def test_rejects_bad_warp(self):
        with pytest.raises(ValidationError):
            DeviceSpec(
                name="bad",
                compute_capability=(1, 0),
                num_sms=1,
                cores_per_sm=32,
                warp_size=24,
                shared_mem_per_sm=1024,
                max_threads_per_sm=1024,
                max_blocks_per_sm=8,
                global_mem_bytes=1 << 30,
                core_clock_hz=1e9,
                mem_bandwidth_bytes_per_s=1e11,
            )

    def test_rejects_bad_shared_rate(self):
        with pytest.raises(ValidationError):
            DeviceSpec(
                name="bad",
                compute_capability=(1, 0),
                num_sms=1,
                cores_per_sm=32,
                warp_size=32,
                shared_mem_per_sm=1024,
                max_threads_per_sm=1024,
                max_blocks_per_sm=8,
                global_mem_bytes=1 << 30,
                core_clock_hz=1e9,
                mem_bandwidth_bytes_per_s=1e11,
                shared_tx_per_cycle=0.0,
            )
