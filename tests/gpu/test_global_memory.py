"""Unit tests for the coalescing model."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gpu.global_memory import CoalescingModel, GlobalTraffic


class TestWarpAccess:
    def test_contiguous_is_one_transaction(self):
        model = CoalescingModel(warp_size=4)
        assert model.warp_access(np.arange(4)) == 1

    def test_aligned_segments(self):
        model = CoalescingModel(warp_size=4)
        # addresses 3 and 4 straddle a segment boundary.
        assert model.warp_access(np.array([3, 4, 5, 6])) == 2

    def test_fully_scattered(self):
        model = CoalescingModel(warp_size=4)
        assert model.warp_access(np.array([0, 100, 200, 300])) == 4

    def test_duplicate_segment_counts_once(self):
        model = CoalescingModel(warp_size=4)
        assert model.warp_access(np.array([0, 1, 0, 1])) == 1

    def test_inactive_lanes(self):
        model = CoalescingModel(warp_size=4)
        assert model.warp_access(np.array([-1, -1, -1, -1])) == 0
        assert model.warp_access(np.array([8, -1, -1, -1])) == 1

    def test_words_counted(self):
        model = CoalescingModel(warp_size=4)
        model.warp_access(np.array([0, 1, 2, -1]))
        assert model.traffic.words == 3


class TestBulkHelpers:
    def test_streamed_copy(self):
        model = CoalescingModel(warp_size=32)
        assert model.streamed_copy(64) == 2
        assert model.streamed_copy(65) == 3
        assert model.traffic.words == 129

    def test_scattered_access(self):
        model = CoalescingModel(warp_size=32)
        assert model.scattered_access(10) == 10
        assert model.traffic.transactions == 10

    def test_reset(self):
        model = CoalescingModel(warp_size=32)
        model.streamed_copy(32)
        old = model.reset()
        assert old.transactions == 1
        assert model.traffic.transactions == 0


class TestGlobalTraffic:
    def test_merged(self):
        a = GlobalTraffic(transactions=2, words=40)
        b = GlobalTraffic(transactions=3, words=50)
        m = a.merged(b)
        assert (m.transactions, m.words) == (5, 90)

    def test_scaled(self):
        t = GlobalTraffic(transactions=2, words=40).scaled(3)
        assert (t.transactions, t.words) == (6, 120)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValidationError):
            GlobalTraffic(transactions=1, words=1).scaled(-1)

    def test_efficiency(self):
        t = GlobalTraffic(transactions=2, words=32)
        assert t.efficiency(32) == 0.5
        assert GlobalTraffic().efficiency(32) == 1.0
