"""Occupancy tests — pinned to the paper's Section IV-A arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.device import QUADRO_M4000, RTX_2080_TI
from repro.gpu.occupancy import occupancy

KIB = 1024


class TestPaperArithmetic:
    def test_rtx_e17_b256(self):
        """17 KiB/block -> 3 resident blocks, 768 threads, 75 % occupancy,
        13 KiB unused (paper Section IV-A, verbatim numbers)."""
        occ = occupancy(RTX_2080_TI, 256, 17 * KIB)
        assert occ.blocks_per_sm == 3
        assert occ.threads_per_sm == 768
        assert occ.occupancy == 0.75
        assert occ.shared_bytes_unused == 13 * KIB

    def test_rtx_e15_b512(self):
        """30 KiB/block -> 2 resident blocks, 1024 threads, 100 % occupancy,
        4 KiB unused."""
        occ = occupancy(RTX_2080_TI, 512, 30 * KIB)
        assert occ.blocks_per_sm == 2
        assert occ.threads_per_sm == 1024
        assert occ.occupancy == 1.0
        assert occ.shared_bytes_unused == 4 * KIB

    def test_rtx_limiters(self):
        assert occupancy(RTX_2080_TI, 256, 17 * KIB).limiter == "shared"
        # For E=15, b=512 the shared and thread limits tie at 2 blocks;
        # ties report the shared constraint.
        assert occupancy(RTX_2080_TI, 512, 30 * KIB).limiter == "shared"
        assert occupancy(RTX_2080_TI, 512, 16 * KIB).limiter == "threads"


class TestGeneral:
    def test_block_limit_binds(self):
        occ = occupancy(QUADRO_M4000, 32, 64)
        assert occ.blocks_per_sm == QUADRO_M4000.max_blocks_per_sm
        assert occ.limiter == "blocks"

    def test_warps_per_sm(self):
        occ = occupancy(RTX_2080_TI, 512, 30 * KIB)
        assert occ.warps_per_sm == 32

    def test_oversized_block_rejected(self):
        with pytest.raises(ConfigurationError):
            occupancy(RTX_2080_TI, 2048, KIB)

    def test_oversized_shared_rejected(self):
        with pytest.raises(ConfigurationError):
            occupancy(RTX_2080_TI, 256, 65 * KIB)

    def test_shared_usage_accounting(self):
        occ = occupancy(RTX_2080_TI, 256, 17 * KIB)
        assert occ.shared_bytes_used == 51 * KIB
        assert occ.shared_bytes_used + occ.shared_bytes_unused == 64 * KIB
