"""Unit tests for the banked shared-memory scratchpad."""

import numpy as np
import pytest

from repro.dmm.trace import AccessTrace
from repro.errors import SimulationError, ValidationError
from repro.gpu.shared_memory import SharedMemory


class TestDataPath:
    def test_load_and_read(self):
        sm = SharedMemory(size=16, num_banks=4)
        sm.load_tile(np.arange(100, 116))
        vals = sm.warp_read(np.array([0, 5, 10, 15]))
        assert vals.tolist() == [100, 105, 110, 115]

    def test_load_tile_offset(self):
        sm = SharedMemory(size=8, num_banks=4)
        sm.load_tile(np.array([7, 8]), offset=4)
        assert sm.contents()[4:6].tolist() == [7, 8]

    def test_load_tile_overflow_rejected(self):
        sm = SharedMemory(size=4, num_banks=4)
        with pytest.raises(ValidationError):
            sm.load_tile(np.arange(5))

    def test_write_then_read(self):
        sm = SharedMemory(size=8, num_banks=4)
        sm.warp_write(np.array([0, 1, 2, 3]), np.array([9, 8, 7, 6]))
        assert sm.contents()[:4].tolist() == [9, 8, 7, 6]

    def test_inactive_lanes(self):
        sm = SharedMemory(size=8, num_banks=4)
        sm.load_tile(np.arange(8))
        vals = sm.warp_read(np.array([3, -1, -1, 7]))
        assert vals.tolist() == [3, 0, 0, 7]

    def test_out_of_bounds(self):
        sm = SharedMemory(size=4, num_banks=4)
        with pytest.raises(SimulationError):
            sm.warp_read(np.array([0, 1, 2, 4]))


class TestConflictAccounting:
    def test_reads_accumulate(self):
        sm = SharedMemory(size=16, num_banks=4)
        sm.warp_read(np.array([0, 4, 8, 12]))  # 4-way
        sm.warp_read(np.array([0, 1, 2, 3]))  # free
        assert sm.report.total_transactions == 5
        assert sm.report.total_replays == 3

    def test_crew_write_violation(self):
        sm = SharedMemory(size=8, num_banks=4)
        with pytest.raises(SimulationError, match="CREW"):
            sm.warp_write(np.array([2, 2, 1, 0]), np.array([1, 1, 1, 1]))

    def test_score_trace_batch(self):
        sm = SharedMemory(size=16, num_banks=4)
        trace = AccessTrace.from_dense(np.array([[0, 4, 8, 12], [1, 2, 3, 0]]))
        report = sm.score_trace(trace)
        assert report.total_transactions == 5
        assert sm.report.total_transactions == 5

    def test_reset_report(self):
        sm = SharedMemory(size=8, num_banks=4)
        sm.warp_read(np.array([0, 4, 1, 2]))
        first = sm.reset_report()
        assert first.total_replays == 1
        assert sm.report.total_replays == 0
