"""Unit tests for the timing model — monotonicity and calibration facts."""

import pytest

from repro.errors import ValidationError
from repro.gpu.device import QUADRO_M4000, RTX_2080_TI
from repro.gpu.timing import KernelCost, TimingModel


def cost(**kwargs) -> KernelCost:
    base = dict(
        shared_cycles=1_000_000,
        shared_steps=400_000,
        global_transactions=100_000,
        global_words=3_000_000,
        compute_warp_instructions=500_000,
        kernel_launches=10,
        warps_per_sm=32,
    )
    base.update(kwargs)
    return KernelCost(**base)


class TestStreams:
    def test_more_conflicts_more_time(self):
        model = TimingModel(QUADRO_M4000)
        fast = model.seconds(cost(shared_cycles=500_000))
        slow = model.seconds(cost(shared_cycles=5_000_000))
        assert slow > fast

    def test_more_traffic_more_time(self):
        model = TimingModel(QUADRO_M4000)
        assert model.global_seconds(cost(global_transactions=2_000_000)) > (
            model.global_seconds(cost(global_transactions=1_000_000))
        )

    def test_low_occupancy_hurts_global(self):
        model = TimingModel(QUADRO_M4000)
        assert model.global_seconds(cost(warps_per_sm=4)) > model.global_seconds(
            cost(warps_per_sm=32)
        )

    def test_occupancy_above_knee_is_free(self):
        model = TimingModel(QUADRO_M4000)
        assert model.global_seconds(cost(warps_per_sm=16)) == pytest.approx(
            model.global_seconds(cost(warps_per_sm=32))
        )

    def test_launch_overhead_additive(self):
        model = TimingModel(QUADRO_M4000)
        delta = model.seconds(cost(kernel_launches=11)) - model.seconds(
            cost(kernel_launches=10)
        )
        assert delta == pytest.approx(model.launch_overhead_s)

    def test_overlap_bounds(self):
        serial = TimingModel(QUADRO_M4000, overlap=0.0)
        perfect = TimingModel(QUADRO_M4000, overlap=1.0)
        default = TimingModel(QUADRO_M4000)
        c = cost()
        assert perfect.seconds(c) <= default.seconds(c) <= serial.seconds(c)

    def test_throughput_consistent_with_seconds(self):
        model = TimingModel(RTX_2080_TI)
        c = cost()
        meps = model.throughput_meps(c, 10_000_000)
        assert meps == pytest.approx(10_000_000 / model.seconds(c) / 1e6)


class TestKernelCost:
    def test_merged_sums_and_keeps_min_residency(self):
        a = cost(warps_per_sm=32)
        b = cost(warps_per_sm=16)
        m = a.merged(b)
        assert m.shared_cycles == 2_000_000
        assert m.warps_per_sm == 16
        assert m.kernel_launches == 20

    def test_scaled(self):
        s = cost().scaled(2.0)
        assert s.shared_cycles == 2_000_000
        assert s.kernel_launches == 10  # launches don't scale with sampling

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValidationError):
            cost().scaled(-1.0)


class TestValidation:
    def test_bad_overlap(self):
        with pytest.raises(ValidationError):
            TimingModel(QUADRO_M4000, overlap=1.5)

    def test_bad_knee(self):
        with pytest.raises(ValidationError):
            TimingModel(QUADRO_M4000, latency_knee_warps=0)

    def test_bad_ipc(self):
        with pytest.raises(ValidationError):
            TimingModel(QUADRO_M4000, compute_ipc=0)
