"""Unit tests for the input generators."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.inputs.generators import (
    GENERATORS,
    conflict_heavy_input,
    few_unique_input,
    generate,
    pad_to_tiles,
    random_input,
    sawtooth_input,
)
from repro.sort.config import SortConfig


class TestRegistry:
    def test_all_names_dispatch(self, small_config):
        n = small_config.tile_size * 2
        for name in GENERATORS:
            data = generate(name, small_config, n, seed=0)
            assert data.shape == (n,)

    def test_unknown_name(self, small_config):
        with pytest.raises(ValidationError, match="known:"):
            generate("bogus", small_config, 48)


class TestRandomInput:
    def test_is_permutation(self, small_config):
        data = random_input(small_config, 100, seed=1)
        assert sorted(data.tolist()) == list(range(100))

    def test_seeded_reproducible(self, small_config):
        a = random_input(small_config, 64, seed=9)
        b = random_input(small_config, 64, seed=9)
        assert np.array_equal(a, b)


class TestShapes:
    def test_sorted_reverse(self, small_config):
        assert generate("sorted", small_config, 5).tolist() == [0, 1, 2, 3, 4]
        assert generate("reverse", small_config, 3).tolist() == [2, 1, 0]

    def test_few_unique_alphabet(self, small_config):
        data = few_unique_input(small_config, 1000, seed=0, num_values=4)
        assert set(np.unique(data)) <= {0, 1, 2, 3}

    def test_sawtooth_has_runs(self, small_config):
        data = sawtooth_input(small_config, 64, teeth=4)
        assert len(set(data.tolist())) == 64  # distinct keys
        # Each tooth is ascending.
        period = 16
        for t in range(4):
            tooth = data[t * period : (t + 1) * period]
            assert (np.diff(tooth) > 0).all()


class TestConflictHeavy:
    def test_is_permutation(self, small_config):
        n = small_config.tile_size * 2
        data = conflict_heavy_input(small_config, n)
        assert sorted(data.tolist()) == list(range(n))

    def test_attacks_only_final_rounds(self):
        """Partial adversary: the last two merge rounds serialize like the
        full construction, earlier global rounds stay at the random level.
        (Uses a meaningful E — at tiny E the E² target barely clears the
        random max-load and the contrast washes out.)"""
        from repro.sort.config import SortConfig
        from repro.sort.pairwise import PairwiseMergeSort

        cfg = SortConfig(elements_per_thread=7, block_size=32, warp_size=16)
        n = cfg.tile_size * 16
        data = conflict_heavy_input(cfg, n)
        result = PairwiseMergeSort(cfg).sort(data)
        glob = [r for r in result.rounds if r.kind == "global"]
        costs = [r.merge_report.total_transactions for r in glob]
        assert min(costs[-2:]) > 1.5 * max(costs[:-2])

    def test_between_random_and_full_construction(self, rng):
        """Karsin's regime: slower than random, short of the worst case —
        on the targeted merge stages."""
        from repro.inputs.generators import worst_case_input
        from repro.sort.config import SortConfig
        from repro.sort.pairwise import PairwiseMergeSort

        cfg = SortConfig(elements_per_thread=7, block_size=32, warp_size=16)
        n = cfg.tile_size * 16
        sorter = PairwiseMergeSort(cfg)

        def merge_cycles(result):
            return sum(
                r.merge_report.total_transactions
                for r in result.rounds
                if r.kind == "global"
            )

        heavy = merge_cycles(sorter.sort(conflict_heavy_input(cfg, n)))
        worst = merge_cycles(sorter.sort(worst_case_input(cfg, n)))
        random = merge_cycles(sorter.sort(rng.permutation(n)))
        assert random < heavy < worst

    def test_rejects_ragged(self, small_config):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            conflict_heavy_input(small_config, small_config.tile_size + 1)


class TestPadToTiles:
    def test_pads_to_valid_size(self, small_config):
        data = np.arange(50)
        padded = pad_to_tiles(data, small_config)
        small_config.validate_input_size(padded.size)
        assert np.array_equal(padded[:50], data)
        assert (padded[50:] == 50).all()

    def test_exact_size_is_copy(self, small_config):
        data = np.arange(small_config.tile_size)
        padded = pad_to_tiles(data, small_config)
        assert padded is not data
        assert np.array_equal(padded, data)

    def test_rounds_tile_count_to_power_of_two(self, small_config):
        data = np.arange(small_config.tile_size * 3)
        padded = pad_to_tiles(data, small_config)
        assert padded.size == small_config.tile_size * 4

    def test_pad_sorts_to_tail(self, small_config):
        from repro.sort.pairwise import PairwiseMergeSort

        data = np.random.default_rng(0).permutation(50)
        padded = pad_to_tiles(data, small_config)
        result = PairwiseMergeSort(small_config).sort(padded)
        assert np.array_equal(result.values[:50], np.arange(50))

    def test_rejects_empty(self, small_config):
        with pytest.raises(ValidationError):
            pad_to_tiles(np.array([]), small_config)
