"""Determinism audit: identical seeds must mean identical everything.

Reproducibility is the point of the whole package; these tests pin it at
every layer — generators, simulation (including sampled scoring), the
bench runner, and the analysis helpers.
"""

import numpy as np

from repro.bench.runner import SweepRunner
from repro.gpu.device import QUADRO_M4000
from repro.inputs.generators import GENERATORS, generate
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort


CFG = SortConfig(elements_per_thread=15, block_size=64, warp_size=32)
N = CFG.tile_size * 16


class TestGeneratorsDeterministic:
    def test_every_generator(self):
        for name in GENERATORS:
            a = generate(name, CFG, N, seed=123)
            b = generate(name, CFG, N, seed=123)
            assert np.array_equal(a, b), name

    def test_seed_changes_random_kinds(self):
        for name in ("random", "few-unique"):
            a = generate(name, CFG, N, seed=1)
            b = generate(name, CFG, N, seed=2)
            assert not np.array_equal(a, b), name


class TestSimulationDeterministic:
    def test_sampled_scoring_reproducible(self, rng):
        data = rng.permutation(N)
        sorter = PairwiseMergeSort(CFG)
        a = sorter.sort(data, score_blocks=3, seed=9)
        b = sorter.sort(data, score_blocks=3, seed=9)
        assert a.total_shared_cycles() == b.total_shared_cycles()
        assert a.total_replays() == b.total_replays()
        for ra, rb in zip(a.rounds, b.rounds):
            assert (
                ra.merge_report.total_transactions
                == rb.merge_report.total_transactions
            )

    def test_different_sample_seeds_differ_on_random_input(self, rng):
        """Different sampled blocks -> (slightly) different counts; this
        confirms the seed actually reaches the sampler."""
        data = rng.permutation(N)
        sorter = PairwiseMergeSort(CFG)
        a = sorter.sort(data, score_blocks=1, seed=1)
        b = sorter.sort(data, score_blocks=1, seed=2)
        assert a.total_shared_cycles() != b.total_shared_cycles()


class TestRunnerDeterministic:
    def test_bench_points_identical(self):
        def run():
            runner = SweepRunner(
                CFG, QUADRO_M4000, exact_threshold=CFG.tile_size * 8,
                score_blocks=2, seed=5,
            )
            return runner.run_point("random", CFG.tile_size * 32)

        assert run() == run()

    def test_synthesis_path_deterministic(self):
        def run():
            runner = SweepRunner(
                CFG, QUADRO_M4000, exact_threshold=CFG.tile_size * 8,
                score_blocks=2, seed=5,
            )
            return runner.run_point("worst-case", CFG.tile_size * 128)

        assert run() == run()


class TestAnalysisDeterministic:
    def test_variance_study(self):
        from repro.analysis.variance import variance_study

        a = variance_study(CFG, QUADRO_M4000, N, num_samples=3,
                           score_blocks=2, seed=4)
        b = variance_study(CFG, QUADRO_M4000, N, num_samples=3,
                           score_blocks=2, seed=4)
        assert np.array_equal(a.samples_ms, b.samples_ms)
        assert a.worst_ms == b.worst_ms
