"""Cross-module integration tests: the full pipeline of the reproduction.

construction → interleavings → permutation → simulated sort → traces →
conflict reports → timing model, all stitched together the way the bench
harness uses them.
"""

import numpy as np
import pytest

from repro import (
    PairwiseMergeSort,
    QUADRO_M4000,
    SortConfig,
    TimingModel,
    aligned_elements,
    construct_warp_assignment,
    occupancy,
    worst_case_permutation,
)
from repro.adversary.family import relaxed_assignment
from repro.bench.runner import SweepRunner
from repro.inputs.generators import generate
from repro.sort.cpu_reference import cpu_merge_sort


class TestPublicApiPipeline:
    """The exact flow the README quick-start shows."""

    def test_quickstart_flow(self):
        cfg = SortConfig(elements_per_thread=15, block_size=64, warp_size=32)
        n = cfg.tile_size * 8
        sorter = PairwiseMergeSort(cfg)
        adversarial = sorter.sort(worst_case_permutation(cfg, n), score_blocks=4)
        random = sorter.sort(
            np.random.default_rng(0).permutation(n), score_blocks=4
        )
        ratio = adversarial.total_shared_cycles() / random.total_shared_cycles()
        assert ratio > 1.5

    def test_timing_pipeline(self):
        cfg = SortConfig(elements_per_thread=15, block_size=512, warp_size=32)
        n = cfg.tile_size * 4
        result = PairwiseMergeSort(cfg).sort(
            worst_case_permutation(cfg, n), score_blocks=2
        )
        occ = occupancy(QUADRO_M4000, cfg.block_size, cfg.shared_bytes_per_block)
        cost = result.kernel_cost(occ.warps_per_sm)
        ms = TimingModel(QUADRO_M4000).milliseconds(cost)
        assert ms > 0


class TestAgainstCpuReference:
    @pytest.mark.parametrize("name", ["random", "worst-case", "conflict-heavy"])
    def test_simulator_matches_reference_merge_tree(self, small_config, name):
        n = small_config.tile_size * 4
        data = generate(name, small_config, n, seed=3)
        gpu = PairwiseMergeSort(small_config).sort(data)
        cpu = cpu_merge_sort(data, run_length=small_config.E)
        assert np.array_equal(gpu.values, cpu)


class TestConstructionIsParameterSpecific:
    def test_input_for_other_e_is_weaker(self):
        """An input built for (E=15) must hurt an (E=15) sort more than an
        input built for a different E does — adversarial inputs are
        parameter-specific (why the paper constructs per configuration)."""
        cfg15 = SortConfig(elements_per_thread=15, block_size=64, warp_size=32)
        cfg13 = SortConfig(elements_per_thread=13, block_size=64, warp_size=32)
        n = cfg15.tile_size * cfg13.tile_size // np.gcd(
            cfg15.tile_size, cfg13.tile_size
        )
        # Use a size valid for both: lcm(960, 832)… keep it simple — pick
        # n as multiple tiles of cfg15 and check cfg13's input against it.
        n = cfg15.tile_size * 16
        own = worst_case_permutation(cfg15, n)
        sorter = PairwiseMergeSort(cfg15)
        own_cycles = sorter.sort(own).total_shared_cycles()
        rng = np.random.default_rng(0)
        rand_cycles = sorter.sort(rng.permutation(n)).total_shared_cycles()
        assert own_cycles > rand_cycles

    def test_relaxed_inputs_interpolate(self):
        """Conclusion item 3: relaxed assignments produce inputs between
        worst-case and benign in simulated shared cycles."""
        cfg = SortConfig(elements_per_thread=15, block_size=64, warp_size=32)
        n = cfg.tile_size * 8
        wa = construct_warp_assignment(cfg.w, cfg.E)
        sorter = PairwiseMergeSort(cfg)

        def cycles(assignment):
            perm = worst_case_permutation(cfg, n, assignment=assignment)
            return sorter.sort(perm, score_blocks=4).total_shared_cycles()

        full = cycles(wa)
        half = cycles(relaxed_assignment(wa, 0.5, seed=0))
        none = cycles(relaxed_assignment(wa, 1.0, seed=0))
        assert full > half > none


class TestSweepRunnerEndToEnd:
    def test_slowdown_shape_matches_paper(self):
        """Constructed inputs slow the Thrust preset by tens of percent on
        the Quadro M4000 across the sweep — Fig. 4's headline."""
        cfg = SortConfig(elements_per_thread=15, block_size=512, warp_size=32)
        runner = SweepRunner(
            cfg, QUADRO_M4000, exact_threshold=cfg.tile_size * 16, score_blocks=4
        )
        sizes = cfg.valid_sizes(40_000_000)[4:]
        from repro.bench.metrics import slowdown_stats

        stats = slowdown_stats(
            runner.sweep("random", sizes), runner.sweep("worst-case", sizes)
        )
        assert 20 < stats.peak_percent < 100
        assert 15 < stats.average_percent <= stats.peak_percent


class TestTheoremsAcrossWarpWidths:
    @pytest.mark.parametrize("w", [8, 16, 32, 64])
    def test_every_coprime_e_matches_theory(self, w):
        import math

        for e in range(1, w):
            if math.gcd(w, e) != 1 or e == w // 2:
                continue
            wa = construct_warp_assignment(w, e)
            assert wa.aligned_count() == aligned_elements(w, e)
