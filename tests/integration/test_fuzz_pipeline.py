"""Property-based fuzzing of the whole pipeline.

Random configurations × random inputs × random knobs, checking the
invariants that must hold for *any* combination: sorts sort, counters obey
conservation laws, sampling estimates exact scoring, constructions hit
their formulas.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.assignment import construct_warp_assignment
from repro.adversary.theory import aligned_elements
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort


@st.composite
def configs(draw):
    w = draw(st.sampled_from([4, 8, 16]))
    e = draw(st.integers(min_value=1, max_value=9))
    b_factor = draw(st.sampled_from([1, 2, 4]))
    return SortConfig(elements_per_thread=e, block_size=w * b_factor,
                      warp_size=w)


@st.composite
def config_and_input(draw):
    cfg = draw(configs())
    tiles = draw(st.sampled_from([1, 2, 4, 8]))
    n = cfg.tile_size * tiles
    kind = draw(st.sampled_from(["permutation", "duplicates", "constant",
                                 "reverse"]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    if kind == "permutation":
        data = rng.permutation(n)
    elif kind == "duplicates":
        data = rng.integers(0, max(2, n // 8), size=n)
    elif kind == "constant":
        data = np.full(n, 7)
    else:
        data = np.arange(n)[::-1].copy()
    return cfg, data


class TestSortInvariants:
    @settings(max_examples=60, deadline=None)
    @given(config_and_input(), st.sampled_from([None, 1, 3]))
    def test_sorts_and_counts_consistently(self, setup, score_blocks):
        cfg, data = setup
        result = PairwiseMergeSort(cfg).sort(data, score_blocks=score_blocks)
        # 1. It sorts.
        assert np.array_equal(result.values, np.sort(data))
        # 2. Round structure: one register phase + log(N/E) merge rounds.
        n = data.size
        assert result.num_rounds == int(math.log2(n // cfg.E))
        # 3. Conservation: every merge round traces E accesses per thread
        #    for the scored blocks.
        for r in result.rounds:
            if r.kind == "registers":
                continue
            scored_threads = r.blocks_scored * cfg.b
            if r.kind == "block":
                scored_threads = r.blocks_scored * cfg.b
            assert r.merge_report.num_accesses == scored_threads * cfg.E
        # 4. Cost sanity: serialized cycles within [steps, accesses].
        for r in result.rounds:
            rep = r.merge_report
            assert rep.conflict_free_cycles <= rep.total_transactions
            assert rep.total_transactions <= rep.num_requests

    @settings(max_examples=40, deadline=None)
    @given(config_and_input())
    def test_padding_preserves_sort_and_bounds(self, setup):
        cfg, data = setup
        stock = PairwiseMergeSort(cfg).sort(data)
        padded = PairwiseMergeSort(cfg, padding=1).sort(data)
        assert np.array_equal(padded.values, stock.values)
        # Padding is injective: access counts unchanged.
        for a, b in zip(stock.rounds, padded.rounds):
            assert a.merge_report.num_accesses == b.merge_report.num_accesses


class TestConstructionInvariants:
    @settings(max_examples=80, deadline=None)
    @given(st.sampled_from([4, 8, 16, 32, 64]), st.data())
    def test_every_coprime_construction(self, w, data):
        e = data.draw(st.integers(min_value=1, max_value=w - 1))
        if math.gcd(w, e) != 1 or e == w // 2:
            return
        wa = construct_warp_assignment(w, e)
        # Formula equality, conservation, and mirror symmetry.
        assert wa.aligned_count() == aligned_elements(w, e)
        assert wa.num_a + wa.num_b == w * e
        assert wa.num_a == (e + 1) // 2 * w
        assert wa.mirrored().aligned_count() == wa.aligned_count()
        # The interleaving realizes the assignment.
        inter = wa.interleaving()
        assert int(inter.sum()) == wa.num_a

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_permutation_roundtrip(self, data):
        from repro.adversary.permutation import worst_case_permutation

        cfg = SortConfig(
            elements_per_thread=data.draw(st.sampled_from([3, 5, 7])),
            block_size=16,
            warp_size=8,
        )
        tiles = data.draw(st.sampled_from([2, 4, 8]))
        n = cfg.tile_size * tiles
        perm = worst_case_permutation(cfg, n)
        assert np.array_equal(np.sort(perm), np.arange(n))
        result = PairwiseMergeSort(cfg).sort(perm)
        assert np.array_equal(result.values, np.arange(n))
