"""Golden regressions: exact construction outputs, pinned.

The constructions are deterministic; these tests freeze their exact output
for the paper's figure parameters so any future change to the scheduler or
sequences that alters the generated inputs (even to an equally-worst-case
variant) is surfaced deliberately rather than silently.
"""

import numpy as np

from repro.adversary.assignment import construct_warp_assignment
from repro.adversary.permutation import worst_case_permutation
from repro.adversary.sequences import sequence_t
from repro.sort.config import SortConfig


class TestFigure3Goldens:
    def test_small_e_tuples(self):
        """w=16, E=7: the exact thread assignment our scheduler emits."""
        wa = construct_warp_assignment(16, 7)
        assert wa.tuples == (
            (7, 0), (0, 7), (7, 0), (2, 5), (7, 0), (3, 4), (0, 7), (6, 1),
            (7, 0), (0, 7), (6, 1), (0, 7), (3, 4), (7, 0), (7, 0), (2, 5),
        )

    def test_large_e_tuples(self):
        """w=16, E=9: sequence T, verbatim."""
        assert sequence_t(16, 9) == [
            (7, 2), (9, 0), (4, 5), (0, 9), (3, 6), (9, 0), (8, 1), (0, 9),
            (8, 1), (3, 6), (0, 9), (4, 5), (9, 0), (7, 2), (9, 0), (0, 9),
        ]

    def test_small_e_owner_columns(self):
        """The aligned columns of Figure 3 (left), all seven banks."""
        wa = construct_warp_assignment(16, 7)
        a_owners, b_owners = wa.bank_matrix()
        for bank in range(7):
            assert a_owners[bank, :4].tolist() == [0, 4, 8, 13]
            assert b_owners[bank, :3].tolist() == [1, 6, 11]

    def test_thrust_e15_tuples_stable(self):
        """The real Thrust parameters' construction, fingerprinted."""
        wa = construct_warp_assignment(32, 15)
        assert wa.tuples[:4] == ((15, 0), (0, 15), (15, 0), (2, 13))
        assert wa.num_a == 256 and wa.num_b == 224
        assert hash(wa.tuples) == hash(tuple(wa.tuples))  # hashable


class TestPermutationGoldens:
    def test_tiny_permutation_fingerprint(self):
        """The exact adversarial permutation for a small config: its prefix
        and a checksum, pinned."""
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        perm = worst_case_permutation(cfg, cfg.tile_size * 4)
        # Determinism across calls.
        again = worst_case_permutation(cfg, cfg.tile_size * 4)
        assert np.array_equal(perm, again)
        # Weighted checksum pins the exact permutation.
        weights = np.arange(1, perm.size + 1, dtype=np.int64)
        checksum = int((perm * weights).sum())
        assert checksum == int((again * weights).sum())
        # The prefix is stable (regenerate deliberately if the construction
        # changes): first tile's first thread-chunks.
        assert perm[:6].tolist() == again[:6].tolist()

    def test_paper_preset_checksum_reproducible(self):
        cfg = SortConfig(elements_per_thread=15, block_size=128)
        n = cfg.tile_size * 4
        a = worst_case_permutation(cfg, n)
        b = worst_case_permutation(cfg, n)
        assert np.array_equal(a, b)
