"""Unit tests for warp-trace assembly."""

import numpy as np
import pytest

from repro.dmm.conflicts import count_conflicts
from repro.dmm.trace import AccessTrace
from repro.errors import ValidationError
from repro.mergepath.kernels import (
    merge_stage_trace,
    stack_warp_steps,
    thread_rank_addresses,
    warp_traces,
)


class TestThreadRankAddresses:
    def test_layout(self):
        """Thread t reads rank tE+j at step j: matrix[j, t]."""
        m = thread_rank_addresses(np.arange(6), 2)
        assert m.shape == (2, 3)
        assert m[:, 0].tolist() == [0, 1]
        assert m[:, 2].tolist() == [4, 5]

    def test_rejects_ragged(self):
        with pytest.raises(ValidationError):
            thread_rank_addresses(np.arange(5), 2)


class TestWarpTraces:
    def test_split_and_pad(self):
        matrix = np.arange(12).reshape(2, 6)
        traces = warp_traces(matrix, warp_size=4)
        assert len(traces) == 2
        assert traces[0].num_lanes == 4
        assert traces[1].num_accesses == 4  # 2 real lanes x 2 steps

    def test_negative_means_inactive(self):
        traces = warp_traces(np.array([[-1, 3]]), warp_size=2)
        assert traces[0].num_accesses == 1


class TestMergeStageTrace:
    def test_one_warp_per_group(self):
        traces = merge_stage_trace(np.arange(8), 2, 4)
        assert len(traces) == 1
        assert traces[0].num_steps == 2

    def test_conflict_equivalence_with_manual(self):
        """Scoring the stage trace equals scoring addresses by hand."""
        addrs = np.array([0, 4, 1, 5, 2, 6, 3, 7])
        traces = merge_stage_trace(addrs, 2, 4)
        r = count_conflicts(traces[0], 4)
        # step 0: threads read ranks 0,2,4,6 -> addrs 0,1,2,3: free
        # step 1: ranks 1,3,5,7 -> addrs 4,5,6,7: free
        assert r.total_replays == 0


class TestStackWarpSteps:
    def test_equivalent_to_separate_scoring(self, rng):
        matrix = rng.integers(0, 64, size=(3, 8)).astype(np.int64)
        stacked = stack_warp_steps(matrix, 4)
        assert stacked.shape == (6, 4)
        combined = count_conflicts(AccessTrace.from_dense(stacked), 4)
        separate = [
            count_conflicts(t, 4) for t in warp_traces(matrix, 4)
        ]
        assert combined.total_transactions == sum(
            s.total_transactions for s in separate
        )
        assert combined.total_replays == sum(s.total_replays for s in separate)
        assert combined.max_degree == max(s.max_degree for s in separate)

    def test_rejects_partial_warp(self):
        with pytest.raises(ValidationError):
            stack_warp_steps(np.zeros((2, 6), dtype=np.int64), 4)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            stack_warp_steps(np.zeros(4, dtype=np.int64), 4)
