"""Unit tests for warp-trace assembly."""

import numpy as np
import pytest

from repro.dmm.conflicts import count_conflicts
from repro.dmm.trace import AccessTrace
from repro.errors import ValidationError
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mergepath.kernels import (
    batched_rank_addresses,
    merge_stage_trace,
    stack_group_warp_steps,
    stack_warp_steps,
    thread_rank_addresses,
    warp_traces,
)


class TestThreadRankAddresses:
    def test_layout(self):
        """Thread t reads rank tE+j at step j: matrix[j, t]."""
        m = thread_rank_addresses(np.arange(6), 2)
        assert m.shape == (2, 3)
        assert m[:, 0].tolist() == [0, 1]
        assert m[:, 2].tolist() == [4, 5]

    def test_rejects_ragged(self):
        with pytest.raises(ValidationError):
            thread_rank_addresses(np.arange(5), 2)


class TestWarpTraces:
    def test_split_and_pad(self):
        matrix = np.arange(12).reshape(2, 6)
        traces = warp_traces(matrix, warp_size=4)
        assert len(traces) == 2
        assert traces[0].num_lanes == 4
        assert traces[1].num_accesses == 4  # 2 real lanes x 2 steps

    def test_negative_means_inactive(self):
        traces = warp_traces(np.array([[-1, 3]]), warp_size=2)
        assert traces[0].num_accesses == 1


class TestMergeStageTrace:
    def test_one_warp_per_group(self):
        traces = merge_stage_trace(np.arange(8), 2, 4)
        assert len(traces) == 1
        assert traces[0].num_steps == 2

    def test_conflict_equivalence_with_manual(self):
        """Scoring the stage trace equals scoring addresses by hand."""
        addrs = np.array([0, 4, 1, 5, 2, 6, 3, 7])
        traces = merge_stage_trace(addrs, 2, 4)
        r = count_conflicts(traces[0], 4)
        # step 0: threads read ranks 0,2,4,6 -> addrs 0,1,2,3: free
        # step 1: ranks 1,3,5,7 -> addrs 4,5,6,7: free
        assert r.total_replays == 0


class TestStackWarpSteps:
    def test_equivalent_to_separate_scoring(self, rng):
        matrix = rng.integers(0, 64, size=(3, 8)).astype(np.int64)
        stacked = stack_warp_steps(matrix, 4)
        assert stacked.shape == (6, 4)
        combined = count_conflicts(AccessTrace.from_dense(stacked), 4)
        separate = [
            count_conflicts(t, 4) for t in warp_traces(matrix, 4)
        ]
        assert combined.total_transactions == sum(
            s.total_transactions for s in separate
        )
        assert combined.total_replays == sum(s.total_replays for s in separate)
        assert combined.max_degree == max(s.max_degree for s in separate)

    def test_rejects_partial_warp(self):
        with pytest.raises(ValidationError):
            stack_warp_steps(np.zeros((2, 6), dtype=np.int64), 4)

    def test_partial_warp_error_names_the_padded_path(self):
        """The two entry points split the partial-warp contract:
        ``warp_traces`` pads trailing partial warps with inactive lanes
        while ``stack_warp_steps`` refuses them — so the refusal must
        tell callers where to go."""
        with pytest.raises(ValidationError, match="warp_traces"):
            stack_warp_steps(np.zeros((2, 6), dtype=np.int64), 4)

    def test_partial_warp_padding_is_score_equivalent(self, rng):
        """Contract between the two paths: hand-padding a partial-warp
        matrix with inactive lanes (-1) and stacking it scores exactly
        like ``warp_traces``'s implicit padding."""
        matrix = rng.integers(0, 64, size=(3, 6)).astype(np.int64)
        padded = np.full((3, 8), -1, dtype=np.int64)
        padded[:, :6] = matrix
        combined = count_conflicts(
            AccessTrace.from_dense(stack_warp_steps(padded, 4)), 4
        )
        merged = None
        for t in warp_traces(matrix, 4):
            r = count_conflicts(t, 4)
            merged = r if merged is None else merged.merged(r)
        assert combined.total_transactions == merged.total_transactions
        assert combined.total_replays == merged.total_replays
        assert combined.num_accesses == merged.num_accesses
        assert combined.max_degree == merged.max_degree

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            stack_warp_steps(np.zeros(4, dtype=np.int64), 4)

    @settings(max_examples=100, deadline=None)
    @given(
        steps=st.integers(0, 6),
        warps=st.integers(1, 4),
        warp_size=st.sampled_from([2, 4, 8]),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_property_matches_per_warp_scoring(
        self, steps, warps, warp_size, seed
    ):
        """Scoring a stacked matrix as one trace equals scoring each warp's
        trace separately and merging the reports — for arbitrary matrices
        including inactive lanes."""
        g = np.random.default_rng(seed)
        matrix = g.integers(-1, 40, size=(steps, warps * warp_size)).astype(
            np.int64
        )
        combined = count_conflicts(
            AccessTrace.from_dense(stack_warp_steps(matrix, warp_size)),
            warp_size,
        )
        merged = None
        for t in warp_traces(matrix, warp_size):
            r = count_conflicts(t, warp_size)
            merged = r if merged is None else merged.merged(r)
        assert combined.total_transactions == merged.total_transactions
        assert combined.total_replays == merged.total_replays
        assert combined.num_requests == merged.num_requests
        assert combined.num_accesses == merged.num_accesses
        assert combined.max_degree == merged.max_degree


class TestBatchedRankAddresses:
    def test_matches_per_tile_concat(self, rng):
        tiles, threads, e = 3, 4, 2
        batch = rng.integers(0, 64, size=(tiles, threads * e)).astype(np.int64)
        expected = np.hstack(
            [thread_rank_addresses(batch[g], e) for g in range(tiles)]
        )
        np.testing.assert_array_equal(batched_rank_addresses(batch, e), expected)

    def test_stacks_identically_through_warps(self, rng):
        """stack_warp_steps(batched matrix) == vstack of per-tile stacks —
        the identity the vectorized block-round scorer depends on."""
        tiles, e, w = 4, 3, 4
        threads = 2 * w
        batch = rng.integers(0, 128, size=(tiles, threads * e)).astype(np.int64)
        combined = stack_warp_steps(batched_rank_addresses(batch, e), w)
        per_tile = np.vstack(
            [
                stack_warp_steps(thread_rank_addresses(batch[g], e), w)
                for g in range(tiles)
            ]
        )
        np.testing.assert_array_equal(combined, per_tile)

    def test_rejects_ragged(self):
        with pytest.raises(ValidationError):
            batched_rank_addresses(np.zeros((2, 5), dtype=np.int64), 2)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            batched_rank_addresses(np.zeros(6, dtype=np.int64), 2)


class TestStackGroupWarpSteps:
    @staticmethod
    def _reference(matrix, num_groups, warp_size):
        """Per-group loop: trim trailing all-inactive steps, stack, concat."""
        group_size = matrix.shape[1] // num_groups
        rows = []
        for g in range(num_groups):
            sub = matrix[:, g * group_size : (g + 1) * group_size]
            active_steps = np.nonzero((sub >= 0).any(axis=1))[0]
            keep = int(active_steps[-1]) + 1 if active_steps.size else 0
            rows.append(stack_warp_steps(sub[:keep], warp_size))
        return (
            np.vstack(rows)
            if rows
            else np.empty((0, warp_size), dtype=np.int64)
        )

    def test_matches_reference_loop(self, rng):
        matrix = rng.integers(-1, 32, size=(5, 24)).astype(np.int64)
        got = stack_group_warp_steps(matrix, num_groups=3, warp_size=4)
        np.testing.assert_array_equal(got, self._reference(matrix, 3, 4))

    def test_trims_trailing_idle_steps_per_group(self):
        # Group 0 converges after step 1; group 1 stays active to the end.
        matrix = np.array(
            [
                [0, 1, 8, 9],
                [2, 3, 10, 11],
                [-1, -1, 12, 13],
            ],
            dtype=np.int64,
        )
        got = stack_group_warp_steps(matrix, num_groups=2, warp_size=2)
        np.testing.assert_array_equal(
            got,
            np.array([[0, 1], [2, 3], [8, 9], [10, 11], [12, 13]]),
        )

    def test_fully_idle_group_contributes_nothing(self):
        matrix = np.full((4, 4), -1, dtype=np.int64)
        matrix[0, 2:] = [5, 6]
        got = stack_group_warp_steps(matrix, num_groups=2, warp_size=2)
        np.testing.assert_array_equal(got, np.array([[5, 6]]))

    def test_zero_steps(self):
        got = stack_group_warp_steps(
            np.empty((0, 8), dtype=np.int64), num_groups=2, warp_size=4
        )
        assert got.shape == (0, 4)

    @settings(max_examples=100, deadline=None)
    @given(
        steps=st.integers(0, 6),
        groups=st.integers(1, 4),
        warps=st.integers(1, 3),
        warp_size=st.sampled_from([2, 4]),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_property_matches_reference(
        self, steps, groups, warps, warp_size, seed
    ):
        g = np.random.default_rng(seed)
        matrix = g.integers(
            -1, 32, size=(steps, groups * warps * warp_size)
        ).astype(np.int64)
        got = stack_group_warp_steps(matrix, groups, warp_size)
        np.testing.assert_array_equal(
            got, self._reference(matrix, groups, warp_size)
        )

    def test_rejects_mismatched_groups(self):
        with pytest.raises(ValidationError):
            stack_group_warp_steps(np.zeros((2, 9), dtype=np.int64), 2, 2)

    def test_rejects_partial_warp_groups(self):
        with pytest.raises(ValidationError):
            stack_group_warp_steps(np.zeros((2, 12), dtype=np.int64), 2, 4)
