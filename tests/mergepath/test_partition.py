"""Unit and property tests for Merge Path partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dmm.conflicts import count_conflicts
from repro.errors import ValidationError
from repro.mergepath.partition import (
    merge_path_partition,
    merge_path_search,
    partition_many_with_trace,
    partition_with_trace,
)

sorted_lists = st.lists(
    st.integers(min_value=0, max_value=100), min_size=0, max_size=40
).map(lambda xs: np.array(sorted(xs), dtype=np.int64))


class TestMergePathSearch:
    def test_interleaved(self):
        a = np.array([1, 3, 5])
        b = np.array([2, 4, 6])
        assert merge_path_search(a, b, 0) == (0, 0)
        assert merge_path_search(a, b, 3) == (2, 1)
        assert merge_path_search(a, b, 6) == (3, 3)

    def test_all_a_smaller(self):
        a = np.array([1, 2])
        b = np.array([10, 20])
        assert merge_path_search(a, b, 2) == (2, 0)

    def test_stability_ties_go_to_a(self):
        a = np.array([5, 5])
        b = np.array([5, 5])
        assert merge_path_search(a, b, 1) == (1, 0)
        assert merge_path_search(a, b, 2) == (2, 0)
        assert merge_path_search(a, b, 3) == (2, 1)

    def test_diagonal_out_of_range(self):
        with pytest.raises(ValidationError):
            merge_path_search(np.array([1]), np.array([2]), 3)

    @settings(max_examples=200, deadline=None)
    @given(sorted_lists, sorted_lists, st.data())
    def test_split_is_correct_prefix(self, a, b, data):
        """The split (i, j) must be exactly the stable-merge prefix."""
        d = data.draw(st.integers(min_value=0, max_value=a.size + b.size))
        i, j = merge_path_search(a, b, d)
        assert i + j == d
        assert 0 <= i <= a.size and 0 <= j <= b.size
        # Prefix property: every taken element <= every untaken element,
        # with a-priority on ties.
        if i < a.size and j > 0:
            assert b[j - 1] < a[i]  # b elements taken strictly before a[i]
        if j < b.size and i > 0:
            assert a[i - 1] <= b[j]  # ties go to a


class TestPartition:
    def test_quantiles_cover(self):
        a = np.arange(0, 20, 2)
        b = np.arange(1, 21, 2)
        ai, bj = merge_path_partition(a, b, 4)
        assert ai[0] == 0 and bj[0] == 0
        assert ai[-1] == a.size and bj[-1] == b.size
        sizes = np.diff(ai) + np.diff(bj)
        assert (sizes == 5).all()

    def test_rejects_ragged(self):
        with pytest.raises(ValidationError):
            merge_path_partition(np.arange(3), np.arange(4), 4)


class TestPartitionWithTrace:
    def test_matches_scalar_search(self, rng):
        a = np.sort(rng.integers(0, 1000, size=64))
        b = np.sort(rng.integers(0, 1000, size=64))
        diagonals = np.arange(0, 129, 8)
        ai, bj, _ = partition_with_trace(a, b, diagonals)
        for d, i, j in zip(diagonals, ai, bj):
            assert (i, j) == merge_path_search(a, b, int(d))

    def test_trace_probes_are_in_bounds(self, rng):
        a = np.sort(rng.integers(0, 100, size=32))
        b = np.sort(rng.integers(0, 100, size=32))
        ai, bj, trace = partition_with_trace(a, b, np.arange(0, 65, 4),
                                             a_base=100, b_base=200)
        active_addrs = trace.addresses[trace.active]
        in_a = (active_addrs >= 100) & (active_addrs < 132)
        in_b = (active_addrs >= 200) & (active_addrs < 232)
        assert (in_a | in_b).all()

    def test_trace_steps_bounded_by_log(self, rng):
        a = np.sort(rng.integers(0, 100, size=64))
        b = np.sort(rng.integers(0, 100, size=64))
        _, _, trace = partition_with_trace(a, b, np.arange(0, 129, 2))
        # ceil(log2(65)) = 7 bisection iterations x 2 probe steps each.
        assert trace.num_steps <= 14

    def test_trace_scoreable(self, rng):
        a = np.sort(rng.integers(0, 100, size=32))
        b = np.sort(rng.integers(0, 100, size=32))
        _, _, trace = partition_with_trace(a, b, np.arange(32))
        report = count_conflicts(trace, 32)
        assert report.total_transactions >= trace.num_steps - 2

    def test_diagonal_validation(self):
        with pytest.raises(ValidationError):
            partition_with_trace(np.arange(4), np.arange(4), np.array([9]))


class TestPartitionManyWithTrace:
    def test_matches_single_list_version(self, rng):
        values = np.sort(rng.integers(0, 1000, size=128)).astype(np.int64)
        a, b = values[:64], values[64:]
        flat = np.concatenate([a, b])
        lanes = 16
        diagonals = np.arange(lanes, dtype=np.int64) * 8
        lo, steps = partition_many_with_trace(
            flat,
            a_base=np.zeros(lanes, dtype=np.int64),
            a_len=np.full(lanes, 64, dtype=np.int64),
            b_base=np.full(lanes, 64, dtype=np.int64),
            b_len=np.full(lanes, 64, dtype=np.int64),
            diagonals=diagonals,
        )
        ai, bj, _ = partition_with_trace(a, b, diagonals)
        assert np.array_equal(lo, ai)

    def test_independent_windows(self, rng):
        """Two lanes searching two different pairs of the same buffer."""
        pair0 = np.sort(rng.integers(0, 50, size=8))
        pair1 = np.sort(rng.integers(50, 99, size=8))
        flat = np.concatenate([pair0, pair1]).astype(np.int64)
        lo, _ = partition_many_with_trace(
            flat,
            a_base=np.array([0, 8]),
            a_len=np.array([4, 4]),
            b_base=np.array([4, 12]),
            b_len=np.array([4, 4]),
            diagonals=np.array([4, 4]),
        )
        want0, _ = merge_path_search(pair0[:4], pair0[4:], 4)
        want1, _ = merge_path_search(pair1[:4], pair1[4:], 4)
        assert lo.tolist() == [want0, want1]

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            partition_many_with_trace(
                np.arange(8),
                a_base=np.array([0]),
                a_len=np.array([4, 4]),
                b_base=np.array([4]),
                b_len=np.array([4]),
                diagonals=np.array([2]),
            )

    def test_trace_base_remapping(self, rng):
        values = np.sort(rng.integers(0, 100, size=16)).astype(np.int64)
        _, steps = partition_many_with_trace(
            values,
            a_base=np.array([0]),
            a_len=np.array([8]),
            b_base=np.array([8]),
            b_len=np.array([8]),
            diagonals=np.array([8]),
            trace_a_base=np.array([1000]),
            trace_b_base=np.array([2000]),
        )
        active = steps[steps >= 0]
        assert ((active >= 1000) & (active < 1008) | (active >= 2000)).all()
