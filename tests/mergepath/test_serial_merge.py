"""Unit and property tests for merges-as-interleavings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.mergepath.serial_merge import (
    interleaving_addresses,
    merge_values,
    stable_merge_interleaving,
    unmerge,
)

sorted_arrays = st.lists(
    st.integers(min_value=-100, max_value=100), min_size=0, max_size=50
).map(lambda xs: np.array(sorted(xs), dtype=np.int64))


class TestStableMergeInterleaving:
    def test_simple(self):
        src = stable_merge_interleaving(np.array([1, 4]), np.array([2, 3]))
        assert src.tolist() == [True, False, False, True]

    def test_ties_take_a_first(self):
        src = stable_merge_interleaving(np.array([5]), np.array([5]))
        assert src.tolist() == [True, False]

    def test_empty_sides(self):
        assert stable_merge_interleaving(np.array([]), np.array([1])).tolist() == [
            False
        ]
        assert stable_merge_interleaving(np.array([1]), np.array([])).tolist() == [
            True
        ]

    def test_rejects_unsorted(self):
        with pytest.raises(ValidationError):
            stable_merge_interleaving(np.array([2, 1]), np.array([]))

    @settings(max_examples=200, deadline=None)
    @given(sorted_arrays, sorted_arrays)
    def test_matches_numpy(self, a, b):
        merged = merge_values(a, b)
        assert np.array_equal(merged, np.sort(np.concatenate([a, b]), kind="stable"))

    @settings(max_examples=200, deadline=None)
    @given(sorted_arrays, sorted_arrays)
    def test_counts(self, a, b):
        src = stable_merge_interleaving(a, b)
        assert int(src.sum()) == a.size
        assert src.size == a.size + b.size


class TestInterleavingAddresses:
    def test_default_layout(self):
        src = np.array([True, False, False, True])
        assert interleaving_addresses(src).tolist() == [0, 2, 3, 1]

    def test_custom_bases(self):
        src = np.array([False, True])
        assert interleaving_addresses(src, a_base=10, b_base=20).tolist() == [20, 10]

    def test_all_addresses_unique_and_complete(self, rng):
        src = rng.random(64) < 0.5
        addrs = interleaving_addresses(src)
        assert sorted(addrs.tolist()) == list(range(64))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            interleaving_addresses(np.zeros((2, 2), dtype=bool))


class TestUnmerge:
    def test_roundtrip_simple(self):
        a = np.array([1, 4])
        b = np.array([2, 3])
        merged = merge_values(a, b)
        src = stable_merge_interleaving(a, b)
        a2, b2 = unmerge(merged, src)
        assert np.array_equal(a2, a) and np.array_equal(b2, b)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=60), st.data())
    def test_unmerge_then_merge_is_identity(self, n, data):
        """For distinct keys, unmerge(sorted, pattern) then merge == sorted,
        and the merge reproduces the pattern exactly (the property the whole
        adversarial construction rests on)."""
        pattern = np.array(
            data.draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
        )
        merged = np.arange(n, dtype=np.int64) * 3 + 7
        a, b = unmerge(merged, pattern)
        assert np.array_equal(merge_values(a, b), merged)
        if n:
            assert np.array_equal(stable_merge_interleaving(a, b), pattern)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            unmerge(np.arange(4), np.array([True, False]))
