"""The mitigation subsystem's equivalence and zero-conflict contracts.

Three guarantees anchor the adversary-vs-mitigation matrix:

* ``mitigation="none"`` is *exactly* the legacy stock sorter — not
  merely equal counts but bit-identical results;
* the ``padding`` backend is *exactly* the legacy ``padding=N`` knob
  (same ``pad_addresses`` transform, same results, across families);
* the conflict-free layouts really are conflict free: zero excess
  replays on every constructed family, on every backend, while the
  stock layout reproduces the paper's pile-up on the same inputs.

Plus the property that makes all of it memo-safe: a remap keys off the
warp *lane* (trailing-axis column), never the global row position, so
the memoized path's tile-subset re-stacking cannot change the answer.
"""

import numpy as np
import pytest

from repro.dmm.memo import ConflictMemo
from repro.errors import ValidationError
from repro.inputs.generators import generate
from repro.mitigation.padding import pad_addresses
from repro.mitigation.registry import (
    check_mitigation,
    create_mitigation,
    reconcile_mitigation,
)
from repro.sort.pairwise import PairwiseMergeSort
from tests.engine.comparison import CONFIGS, INPUTS, assert_results_identical

CFG = CONFIGS["small-e"]
N = CFG.tile_size * 8

CFREE_SPECS = ("cfree-sort", "cfree-permute")

#: The engineered families — the inputs the defenses exist to survive.
CONSTRUCTED = ("worst-case", "conflict-heavy")


def _sort(mitigation=None, *, config=CFG, data=None, name="worst-case",
          **kwargs):
    if data is None:
        data = generate(name, config, N, seed=0)
    sorter = PairwiseMergeSort(config, mitigation=mitigation, **kwargs)
    return sorter.sort(data, score_blocks=None)


class TestNoneIsLegacyStock:
    @pytest.mark.parametrize("name", INPUTS)
    def test_bit_identical_per_family(self, name):
        data = generate(name, CFG, N, seed=0)
        legacy = PairwiseMergeSort(CFG).sort(data)
        routed = PairwiseMergeSort(CFG, mitigation="none").sort(data)
        assert_results_identical(routed, legacy)

    def test_native_padding_keeps_identity_shortcut(self):
        """``none`` must not even copy the dense matrices: the identity
        shortcut in ``_physical`` stays on the fast path."""
        none = create_mitigation("none")
        assert none.native_padding == 0
        dense = np.arange(32, dtype=np.int64).reshape(4, 8)
        assert np.array_equal(none.remap(dense, 8), dense)


class TestPaddingBackendIsLegacyKnob:
    @pytest.mark.parametrize("pad", [1, 2])
    @pytest.mark.parametrize("name", INPUTS)
    def test_bit_identical_per_family(self, name, pad):
        data = generate(name, CFG, N, seed=0)
        legacy = PairwiseMergeSort(CFG, padding=pad).sort(data)
        routed = PairwiseMergeSort(CFG, mitigation=f"padding:{pad}").sort(data)
        assert_results_identical(routed, legacy)

    @pytest.mark.parametrize("pad", [0, 1, 3])
    def test_remap_is_pad_addresses_verbatim(self, pad):
        rng = np.random.default_rng(0)
        dense = rng.integers(-1, 512, size=(40, 16)).astype(np.int64)
        backend = create_mitigation(f"padding:{pad}")
        assert np.array_equal(
            backend.remap(dense, 16), pad_addresses(dense, 16, pad)
        )

    def test_reconciliation_agrees_and_conflicts_raise(self):
        assert reconcile_mitigation(None, 2).spec == "padding:2"
        assert reconcile_mitigation("padding:2", 2).spec == "padding:2"
        assert check_mitigation("padding") == "padding:1"
        with pytest.raises(ValidationError):
            reconcile_mitigation("padding:2", 1)
        with pytest.raises(ValidationError):
            reconcile_mitigation("cfree-sort", 1)


class TestCfreeLayoutsAreConflictFree:
    @pytest.mark.parametrize("spec", CFREE_SPECS)
    @pytest.mark.parametrize("name", CONSTRUCTED)
    def test_zero_replays_on_constructed_families(self, name, spec):
        """Exact (every-block) scoring: the cfree layouts report zero
        excess replays on the engineered inputs, while the stock layout
        reproduces the pile-up on the very same data."""
        data = generate(name, CFG, N, seed=0)
        stock = _sort("none", data=data)
        assert stock.total_replays() > 0
        mitigated = _sort(spec, data=data)
        assert mitigated.total_replays() == 0
        np.testing.assert_array_equal(mitigated.values, stock.values)

    @pytest.mark.parametrize("spec", CFREE_SPECS)
    def test_zero_replays_across_the_matrix_backends(self, spec):
        """The guarantee holds for every backend in the matrix grid, not
        just the pairwise sort the adversary targets."""
        from repro.bench.matrix import run_matrix

        result = run_matrix(
            input_names=("worst-case",),
            mitigations=("none", spec),
            tiles=4,
        )
        for backend in result.backends:
            assert result.cell("worst-case", backend, "none").total_replays > 0
            cell = result.cell("worst-case", backend, spec)
            assert cell.total_replays == 0
            assert cell.conflict_factor == 1.0

    @pytest.mark.parametrize("spec", CFREE_SPECS)
    def test_remap_lands_every_lane_on_its_own_bank(self, spec):
        """Why the guarantee is input-independent: physical address mod
        warp size equals the lane index, so no two active lanes of a
        warp step can ever collide — for ANY logical pattern."""
        backend = create_mitigation(spec)
        rng = np.random.default_rng(1)
        w = 8
        dense = rng.integers(0, 256, size=(64, w)).astype(np.int64)
        dense[3, 2] = -1  # inactive lane must pass through
        phys = backend.remap(dense, w)
        assert phys[3, 2] == -1
        active = phys >= 0
        lanes = np.broadcast_to(np.arange(w), phys.shape)
        assert np.array_equal(phys[active] % w, lanes[active])

    @pytest.mark.parametrize("spec", CFREE_SPECS)
    def test_remap_is_row_position_independent(self, spec):
        """The memo-safety property: remapping a subset of rows equals
        taking the same subset of the remapped whole, so the memoized
        path's tile-subset re-stacking is bit-identical."""
        backend = create_mitigation(spec)
        rng = np.random.default_rng(2)
        dense = rng.integers(0, 256, size=(32, 8)).astype(np.int64)
        subset = np.array([0, 5, 17, 31])
        assert np.array_equal(
            backend.remap(dense, 8)[subset], backend.remap(dense[subset], 8)
        )


class TestScoringPathsAgreePerMitigation:
    @pytest.mark.parametrize(
        "spec", ["none", "padding:1", "cfree-sort", "cfree-permute"]
    )
    def test_memoized_fused_loop_match_vectorized(self, spec):
        data = generate("worst-case", CFG, N, seed=0)
        reference = _sort(spec, data=data)
        memoized = _sort(spec, data=data, memo=ConflictMemo())
        assert memoized.memo_stats.misses > 0  # the memo actually engaged
        assert_results_identical(memoized, reference)
        for scoring in ("fused", "loop"):
            assert_results_identical(
                _sort(spec, data=data, scoring=scoring), reference
            )

    def test_memo_context_separates_mitigations(self):
        """Warm state from one layout must never serve another: the
        mitigation spec is part of the memo context digest."""
        memo = ConflictMemo()
        data = generate("worst-case", CFG, N, seed=0)
        first = _sort("none", data=data, memo=memo)
        second = _sort("cfree-sort", data=data, memo=memo)
        assert first.total_replays() > 0
        assert second.total_replays() == 0
        assert second.memo_stats.hits == 0  # nothing leaked across layouts

    def test_analytic_rejects_unmodeled_layouts(self):
        with pytest.raises(ValidationError):
            PairwiseMergeSort(CFG, scoring="analytic", mitigation="cfree-sort")
        PairwiseMergeSort(CFG, scoring="analytic", mitigation="padding:1")
