"""Tests for Dotsenko-style padding — the conflict-free mitigation."""

import numpy as np
import pytest

from repro.adversary.permutation import worst_case_permutation
from repro.errors import ValidationError
from repro.mitigation.padding import pad_addresses, padded_shared_bytes, padded_size
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort


class TestPadAddresses:
    def test_identity_at_zero(self):
        addrs = np.array([0, 5, 9, -1])
        assert np.array_equal(pad_addresses(addrs, 4, 0), addrs)

    def test_skews_columns(self):
        # Logical column walk 0, 4, 8 (all bank 0 for w=4) spreads out.
        out = pad_addresses(np.array([0, 4, 8]), 4, 1)
        assert out.tolist() == [0, 5, 10]
        assert len(set(a % 4 for a in out.tolist())) == 3

    def test_inactive_preserved(self):
        out = pad_addresses(np.array([-1, 7]), 4, 2)
        assert out[0] == -1
        assert out[1] == 7 + (7 // 4) * 2

    def test_injective(self):
        """Padding must never map two logical cells to one physical cell."""
        logical = np.arange(1024)
        for pad in (1, 2, 3):
            physical = pad_addresses(logical, 32, pad)
            assert np.unique(physical).size == logical.size

    def test_monotone(self):
        logical = np.arange(256)
        physical = pad_addresses(logical, 16, 1)
        assert (np.diff(physical) > 0).all()

    def test_rejects_bad_padding(self):
        with pytest.raises(ValidationError):
            pad_addresses(np.array([0]), 4, -1)


class TestPaddedSize:
    def test_examples(self):
        assert padded_size(0, 4, 1) == 0
        assert padded_size(4, 4, 1) == 4  # last index 3 gains nothing
        assert padded_size(5, 4, 1) == 6  # index 4 -> 5
        assert padded_size(8, 4, 1) == 9

    def test_matches_transform(self):
        for n in (1, 7, 32, 100):
            top = pad_addresses(np.array([n - 1]), 8, 3)[0]
            assert padded_size(n, 8, 3) == top + 1

    def test_shared_bytes(self):
        cfg = SortConfig(elements_per_thread=15, block_size=512)
        assert padded_shared_bytes(cfg, 0) == cfg.shared_bytes_per_block
        assert padded_shared_bytes(cfg, 1) > cfg.shared_bytes_per_block


class TestMitigationEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        cfg = SortConfig(elements_per_thread=15, block_size=128)
        n = cfg.tile_size * 16
        perm = worst_case_permutation(cfg, n)
        return cfg, n, perm

    def test_sort_still_correct_with_padding(self, setup):
        cfg, n, perm = setup
        result = PairwiseMergeSort(cfg, padding=1).sort(perm, score_blocks=4)
        assert np.array_equal(result.values, np.arange(n))

    def test_padding_neutralizes_adversary(self, setup):
        """The constructed input's serialization collapses under pad=1."""
        cfg, n, perm = setup
        stock = PairwiseMergeSort(cfg).sort(perm, score_blocks=4)
        padded = PairwiseMergeSort(cfg, padding=1).sort(perm, score_blocks=4)
        assert padded.total_shared_cycles() < 0.6 * stock.total_shared_cycles()

    def test_padded_global_rounds_near_conflict_free(self, setup):
        """The E² per-warp pile-up disappears: padded merge rounds cost a
        small multiple of the conflict-free E cycles per warp — below even
        the random-input level (~3.4·E, the balls-in-bins max load), instead
        of the stock worst case's E² = 225."""
        cfg, n, perm = setup
        result = PairwiseMergeSort(cfg, padding=1).sort(perm, score_blocks=4)
        for r in result.rounds:
            if r.kind == "global":
                warps = r.blocks_scored * cfg.warps_per_block
                per_warp = r.merge_report.total_transactions / warps
                assert per_warp < 3.4 * cfg.E  # stock input costs E² = 225

    def test_padding_rejects_negative(self):
        cfg = SortConfig(elements_per_thread=3, block_size=32)
        with pytest.raises(ValidationError):
            PairwiseMergeSort(cfg, padding=-1)
