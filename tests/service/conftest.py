"""Shared fixtures: a real daemon on a loopback ephemeral port.

The server runs in a background thread with its own event loop (signal
handlers are skipped automatically off the main thread); tests talk to
it through the blocking :class:`ServiceClient`, exactly as external
consumers would.
"""

import asyncio
import threading
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, run_service

from repro.sort.config import SortConfig


def small_config(**kwargs):
    defaults = dict(elements_per_thread=3, block_size=32, warp_size=32)
    defaults.update(kwargs)
    return SortConfig(**defaults)


@pytest.fixture
def service_factory():
    """Context manager factory: ``with factory(queue_limit=2) as box: ...``.

    ``box.service`` is the in-loop :class:`ReproService`, ``box.client``
    a connected client, and ``box.holder["drained"]`` (after exit) the
    clean-drain flag returned by the server loop.
    """

    @contextmanager
    def factory(**overrides):
        config = ServiceConfig(
            port=0,
            request_timeout=overrides.pop("request_timeout", 60.0),
            drain_timeout=overrides.pop("drain_timeout", 15.0),
            **overrides,
        )
        holder = {}
        ready = threading.Event()

        def runner():
            holder["drained"] = asyncio.run(
                run_service(
                    config,
                    on_started=lambda s: (holder.update(service=s), ready.set()),
                )
            )

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert ready.wait(15), "service failed to start"
        service = holder["service"]
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}", timeout=90.0
        )
        box = SimpleNamespace(
            service=service, client=client, holder=holder, thread=thread
        )
        try:
            yield box
        finally:
            if thread.is_alive():
                service.request_shutdown()
                thread.join(30)
            assert not thread.is_alive(), "service thread failed to exit"

    return factory
