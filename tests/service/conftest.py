"""Shared fixtures: a real daemon on a loopback ephemeral port.

The server runs in a background thread with its own event loop (signal
handlers are skipped automatically off the main thread); tests talk to
it through the blocking :class:`ServiceClient`, exactly as external
consumers would.
"""

import asyncio
import threading
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, run_service

from repro.sort.config import SortConfig


def small_config(**kwargs):
    defaults = dict(elements_per_thread=3, block_size=32, warp_size=32)
    defaults.update(kwargs)
    return SortConfig(**defaults)


@pytest.fixture
def service_factory():
    """Context manager factory: ``with factory(queue_limit=2) as box: ...``.

    ``box.service`` is the in-loop :class:`ReproService`, ``box.client``
    a connected client, and ``box.holder["drained"]`` (after exit) the
    clean-drain flag returned by the server loop.
    """

    @contextmanager
    def factory(**overrides):
        config = ServiceConfig(
            port=0,
            request_timeout=overrides.pop("request_timeout", 60.0),
            drain_timeout=overrides.pop("drain_timeout", 15.0),
            **overrides,
        )
        holder = {}
        ready = threading.Event()

        def runner():
            holder["drained"] = asyncio.run(
                run_service(
                    config,
                    on_started=lambda s: (holder.update(service=s), ready.set()),
                )
            )

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert ready.wait(15), "service failed to start"
        service = holder["service"]
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}", timeout=90.0
        )
        box = SimpleNamespace(
            service=service, client=client, holder=holder, thread=thread
        )
        try:
            yield box
        finally:
            if thread.is_alive():
                service.request_shutdown()
                thread.join(30)
            assert not thread.is_alive(), "service thread failed to exit"

    return factory


@pytest.fixture
def fleet_factory():
    """Context manager factory: N worker daemons behind a shard router.

    ``with factory(shards=2) as box: ...`` — ``box.fleet`` is the
    :class:`ShardFleet` (worker services reachable via
    ``box.fleet.service(i)`` for monkeypatching), ``box.router`` the
    in-loop :class:`ShardRouter`, and ``box.client`` a client connected
    to the router. Keyword dicts ``worker=`` / ``router=`` override the
    respective config fields.
    """

    @contextmanager
    def factory(shards=2, *, worker=None, router=None):
        from repro.service.shard import RouterConfig, ShardFleet, run_router

        worker_config = ServiceConfig(
            port=0,
            request_timeout=60.0,
            drain_timeout=10.0,
            **(worker or {}),
        )
        fleet = ShardFleet(worker_config, shards).start()
        router_config = RouterConfig(
            port=0,
            request_timeout=60.0,
            forward_timeout=55.0,
            drain_timeout=10.0,
            **(router or {}),
        )
        holder = {}
        ready = threading.Event()

        def runner():
            holder["drained"] = asyncio.run(
                run_router(
                    router_config,
                    fleet.urls,
                    on_started=lambda r: (
                        holder.update(router=r),
                        ready.set(),
                    ),
                )
            )

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        try:
            assert ready.wait(15), "router failed to start"
            router_obj = holder["router"]
            client = ServiceClient(
                f"http://127.0.0.1:{router_obj.port}", timeout=90.0
            )
            yield SimpleNamespace(
                fleet=fleet,
                router=router_obj,
                client=client,
                holder=holder,
                thread=thread,
            )
        finally:
            if thread.is_alive() and "router" in holder:
                holder["router"].request_shutdown()
                thread.join(30)
            fleet.stop()
            assert not thread.is_alive(), "router thread failed to exit"

    return factory
