"""Unit tests for single-flight coalescing and the admission gate."""

import asyncio

import pytest

from repro.service.batching import AdmissionGate, SingleFlight
from repro.service.stats import ServiceStats


def run(coro):
    return asyncio.run(coro)


def make_layer(limit=4):
    stats = ServiceStats()
    return stats, SingleFlight(stats), AdmissionGate(limit, stats)


class TestAdmissionGate:
    def test_limit_validated(self):
        with pytest.raises(ValueError):
            AdmissionGate(0, ServiceStats())

    def test_enter_exit_tracks_peak(self):
        stats = ServiceStats()
        gate = AdmissionGate(2, stats)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()  # full
        assert stats.rejected == 1
        gate.exit()
        assert gate.try_enter()  # slot freed
        assert stats.peak_in_flight == 2


class TestSingleFlight:
    def test_identical_keys_share_one_computation(self):
        stats, flight, gate = make_layer()
        calls = []

        async def main():
            started = asyncio.Event()
            release = asyncio.Event()

            async def work():
                calls.append(1)
                started.set()
                await release.wait()
                return "result"

            async def one():
                value, _ = await flight.run(
                    "k", work, gate=gate, timeout=10
                )
                return value

            tasks = [asyncio.create_task(one()) for _ in range(8)]
            await started.wait()
            release.set()
            return await asyncio.gather(*tasks)

        assert run(main()) == ["result"] * 8
        assert len(calls) == 1
        assert stats.primary == 1 and stats.coalesced == 7
        assert stats.in_flight == 0

    def test_distinct_keys_do_not_coalesce(self):
        stats, flight, gate = make_layer()

        async def main():
            async def work():
                return "r"

            await flight.run("a", work, gate=gate, timeout=10)
            await flight.run("b", work, gate=gate, timeout=10)

        run(main())
        assert stats.primary == 2 and stats.coalesced == 0

    def test_full_gate_rejects_new_leaders_only(self):
        stats, flight, gate = make_layer(limit=1)

        async def main():
            started = asyncio.Event()
            release = asyncio.Event()

            async def work():
                started.set()
                await release.wait()
                return "r"

            leader = asyncio.create_task(
                flight.run("k", work, gate=gate, timeout=10)
            )
            await started.wait()
            # Identical key: coalesces despite the full gate.
            waiter = asyncio.create_task(
                flight.run("k", work, gate=gate, timeout=10)
            )
            await asyncio.sleep(0)
            # Distinct key: needs a slot, gets rejected.
            with pytest.raises(BlockingIOError):
                await flight.run("other", work, gate=gate, timeout=10)
            release.set()
            return await asyncio.gather(leader, waiter)

        (r1, c1), (r2, c2) = run(main())
        assert (r1, c1) == ("r", False) and (r2, c2) == ("r", True)
        assert stats.rejected == 1
        # A rejected leader leaves no half-registered key behind.
        assert len(flight) == 0

    def test_waiter_timeout_leaves_computation_running(self):
        stats, flight, gate = make_layer()

        async def main():
            release = asyncio.Event()

            async def work():
                await release.wait()
                return "late"

            impatient = asyncio.create_task(
                flight.run("k", work, gate=gate, timeout=0.05)
            )
            with pytest.raises(asyncio.TimeoutError):
                await impatient
            # The shared computation is still in flight and joinable.
            patient = asyncio.create_task(
                flight.run("k", work, gate=gate, timeout=10)
            )
            await asyncio.sleep(0)
            release.set()
            return await patient

        value, coalesced = run(main())
        assert value == "late" and coalesced
        assert stats.in_flight == 0

    def test_exceptions_propagate_to_every_waiter(self):
        stats, flight, gate = make_layer()

        async def main():
            started = asyncio.Event()
            release = asyncio.Event()

            async def work():
                started.set()
                await release.wait()
                raise RuntimeError("boom")

            async def one():
                with pytest.raises(RuntimeError, match="boom"):
                    await flight.run("k", work, gate=gate, timeout=10)

            tasks = [asyncio.create_task(one()) for _ in range(3)]
            await started.wait()
            release.set()
            await asyncio.gather(*tasks)

        run(main())
        assert stats.in_flight == 0
        assert len(flight) == 0

    def test_key_reusable_after_completion(self):
        stats, flight, gate = make_layer()

        async def main():
            async def work():
                return "r"

            await flight.run("k", work, gate=gate, timeout=10)
            await flight.run("k", work, gate=gate, timeout=10)

        run(main())
        # Sequential identical requests are both leaders — coalescing is
        # an in-flight property, not a cache.
        assert stats.primary == 2 and stats.coalesced == 0

    def test_drain_waits_for_leaders(self):
        stats, flight, gate = make_layer()

        async def main():
            release = asyncio.Event()

            async def work():
                await release.wait()
                return "r"

            task = asyncio.create_task(
                flight.run("k", work, gate=gate, timeout=10)
            )
            await asyncio.sleep(0)
            assert not await flight.drain(0.05)  # still running
            release.set()
            assert await flight.drain(5)
            await task

        run(main())
