"""End-to-end CLI coverage: ``repro-mergesort request`` against a live daemon.

The daemon comes from the ``service_factory`` fixture; the CLI talks to
it over loopback exactly as an operator would.
"""

import numpy as np

from repro.cli import main


def url(box) -> str:
    return f"http://127.0.0.1:{box.service.port}"


class TestRequestCli:
    def test_healthz(self, service_factory, capsys):
        with service_factory() as box:
            assert main(["request", "healthz", "--url", url(box)]) == 0
            assert '"status": "ok"' in capsys.readouterr().out

    def test_simulate_prints_summary(self, service_factory, capsys):
        with service_factory() as box:
            assert (
                main(["request", "simulate", "--url", url(box),
                      "--preset", "mgpu-maxwell", "--tiles", "2",
                      "--score-blocks", "2"])
                == 0
            )
            out = capsys.readouterr().out
            assert "sorted correctly: True" in out
            assert "served by coalescing: False" in out
            assert "memoized scoring (server-side):" in out

    def test_construct_saves_npy(self, service_factory, tmp_path, capsys):
        from repro.adversary.permutation import worst_case_permutation
        from repro.sort.presets import preset

        out_path = tmp_path / "perm.npy"
        with service_factory() as box:
            assert (
                main(["request", "construct", "--url", url(box),
                      "--preset", "mgpu-maxwell", "--tiles", "2",
                      "--out", str(out_path)])
                == 0
            )
            stdout = capsys.readouterr().out
            assert "constructed worst-case permutation" in stdout
        cfg = preset("mgpu-maxwell")
        expected = worst_case_permutation(cfg, cfg.tile_size * 2)
        assert np.array_equal(np.load(out_path), expected)

    def test_stats_then_shutdown(self, service_factory, capsys):
        with service_factory() as box:
            assert main(["request", "stats", "--url", url(box)]) == 0
            assert '"batching"' in capsys.readouterr().out
            assert main(["request", "shutdown", "--url", url(box)]) == 0
            assert '"draining"' in capsys.readouterr().out
            box.thread.join(30)
            assert not box.thread.is_alive()


class TestEngineSelection:
    """``request --engine`` maps a registry name to wire fields; names
    with no wire equivalent (and conflicting flag combos) exit 2."""

    def test_engine_analytic_round_trips(self, service_factory, capsys):
        with service_factory() as box:
            assert (
                main(["request", "simulate", "--url", url(box),
                      "--preset", "mgpu-maxwell", "--tiles", "2",
                      "--engine", "analytic"])
                == 0
            )
            assert "sorted correctly: True" in capsys.readouterr().out

    def test_engine_inline_memoized_round_trips(self, service_factory, capsys):
        with service_factory() as box:
            assert (
                main(["request", "simulate", "--url", url(box),
                      "--preset", "mgpu-maxwell", "--tiles", "2",
                      "--engine", "inline-memoized"])
                == 0
            )
            assert "sorted correctly: True" in capsys.readouterr().out

    def test_engine_pool_has_no_wire_equivalent(self, service_factory, capsys):
        with service_factory() as box:
            assert (
                main(["request", "simulate", "--url", url(box),
                      "--preset", "mgpu-maxwell", "--tiles", "2",
                      "--engine", "pool"])
                == 2
            )
            assert "no wire equivalent" in capsys.readouterr().err

    def test_engine_and_scoring_are_mutually_exclusive(
        self, service_factory, capsys
    ):
        with service_factory() as box:
            assert (
                main(["request", "simulate", "--url", url(box),
                      "--preset", "mgpu-maxwell", "--tiles", "2",
                      "--engine", "analytic", "--scoring", "loop"])
                == 2
            )
            assert "mutually exclusive" in capsys.readouterr().err

    def test_unknown_scoring_exits_2_at_argparse(self, capsys):
        """``--scoring`` is a closed argparse choice list drawn from the
        registry, so a bogus value never reaches the wire. (The server's
        own parse-time 400 for hand-rolled clients is covered in
        ``test_server.py::TestScoringAndPadding``.)"""
        import pytest

        with pytest.raises(SystemExit) as exc:
            main(["request", "simulate", "--url", "http://127.0.0.1:1",
                  "--preset", "mgpu-maxwell", "--tiles", "2",
                  "--scoring", "warp-speed"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err
