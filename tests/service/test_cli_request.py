"""End-to-end CLI coverage: ``repro-mergesort request`` against a live daemon.

The daemon comes from the ``service_factory`` fixture; the CLI talks to
it over loopback exactly as an operator would.
"""

import numpy as np

from repro.cli import main


def url(box) -> str:
    return f"http://127.0.0.1:{box.service.port}"


class TestRequestCli:
    def test_healthz(self, service_factory, capsys):
        with service_factory() as box:
            assert main(["request", "healthz", "--url", url(box)]) == 0
            assert '"status": "ok"' in capsys.readouterr().out

    def test_simulate_prints_summary(self, service_factory, capsys):
        with service_factory() as box:
            assert (
                main(["request", "simulate", "--url", url(box),
                      "--preset", "mgpu-maxwell", "--tiles", "2",
                      "--score-blocks", "2"])
                == 0
            )
            out = capsys.readouterr().out
            assert "sorted correctly: True" in out
            assert "served by coalescing: False" in out
            assert "memoized scoring (server-side):" in out

    def test_construct_saves_npy(self, service_factory, tmp_path, capsys):
        from repro.adversary.permutation import worst_case_permutation
        from repro.sort.presets import preset

        out_path = tmp_path / "perm.npy"
        with service_factory() as box:
            assert (
                main(["request", "construct", "--url", url(box),
                      "--preset", "mgpu-maxwell", "--tiles", "2",
                      "--out", str(out_path)])
                == 0
            )
            stdout = capsys.readouterr().out
            assert "constructed worst-case permutation" in stdout
        cfg = preset("mgpu-maxwell")
        expected = worst_case_permutation(cfg, cfg.tile_size * 2)
        assert np.array_equal(np.load(out_path), expected)

    def test_stats_then_shutdown(self, service_factory, capsys):
        with service_factory() as box:
            assert main(["request", "stats", "--url", url(box)]) == 0
            assert '"batching"' in capsys.readouterr().out
            assert main(["request", "shutdown", "--url", url(box)]) == 0
            assert '"draining"' in capsys.readouterr().out
            box.thread.join(30)
            assert not box.thread.is_alive()
