"""Client-side transport decoding, independent of a live server.

The blocking :class:`~repro.service.client.ServiceClient` is mostly
exercised end-to-end by ``test_server.py``; this module pins the pure
decoding helpers — above all ``Retry-After`` parsing, where a junk or
HTTP-date header must still surface as a typed
:class:`~repro.errors.BackpressureError` rather than a client-side
``ValueError``.
"""

import email.utils
import time

import pytest

from repro.errors import ValidationError
from repro.service.client import ServiceClient, parse_retry_after


class TestParseRetryAfter:
    def test_missing_header_uses_default(self):
        assert parse_retry_after(None) == 1.0

    def test_blank_header_uses_default(self):
        assert parse_retry_after("") == 1.0
        assert parse_retry_after("   ") == 1.0

    def test_integer_seconds(self):
        assert parse_retry_after("5") == 5.0

    def test_float_seconds_with_whitespace(self):
        assert parse_retry_after(" 0.25 ") == 0.25

    def test_zero_is_valid(self):
        assert parse_retry_after("0") == 0.0

    def test_negative_clamps_to_default(self):
        assert parse_retry_after("-3") == 1.0

    def test_nan_and_inf_clamp_to_default(self):
        assert parse_retry_after("nan") == 1.0
        assert parse_retry_after("inf") == 1.0

    def test_http_date_in_future(self):
        """RFC 9110 allows an HTTP-date; decode to seconds-from-now."""
        header = email.utils.formatdate(time.time() + 30, usegmt=True)
        seconds = parse_retry_after(header)
        assert 25.0 < seconds <= 31.0

    def test_http_date_in_past_clamps_to_zero(self):
        header = email.utils.formatdate(time.time() - 60, usegmt=True)
        assert parse_retry_after(header) == 0.0

    def test_junk_header_uses_default(self):
        """Regression: ``float('soon')`` used to raise an uncaught
        ValueError out of ``ServiceClient.request`` instead of the typed
        backpressure error the retry loops catch."""
        assert parse_retry_after("soon") == 1.0
        assert parse_retry_after("Wed, not a date") == 1.0


class TestClientUrlParsing:
    def test_host_port(self):
        client = ServiceClient("http://127.0.0.1:9001")
        assert (client.host, client.port) == ("127.0.0.1", 9001)

    def test_bare_host_defaults_port(self):
        client = ServiceClient("localhost")
        assert (client.host, client.port) == ("localhost", 8787)

    def test_https_rejected(self):
        with pytest.raises(ValidationError):
            ServiceClient("https://example.com")
