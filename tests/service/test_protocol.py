"""Protocol round-trip and schema tests.

The load-bearing property: a :class:`SortResult` (or
:class:`BenchPoint`) pushed through the JSON wire format comes back
bit-identical to the direct library call that produced it — including
array dtypes, run-length segment structure, and ``memo_stats`` deltas.
"""

import json

import numpy as np
import pytest

from repro.bench.metrics import BenchPoint
from repro.errors import ValidationError
from repro.inputs.generators import generate
from repro.service.protocol import (
    ConstructRequest,
    SimulateRequest,
    SweepRequest,
    point_from_obj,
    point_to_obj,
)
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort
from repro.sort.serialize import (
    array_from_obj,
    array_to_obj,
    config_from_obj,
    config_to_obj,
    reports_identical,
    result_from_obj,
    result_to_obj,
    results_identical,
)

from tests.service.conftest import small_config


def sorted_result(cfg=None, *, memo="auto", tiles=4, seed=0):
    cfg = cfg or small_config()
    data = generate("worst-case", cfg, cfg.tile_size * tiles, seed=seed)
    return PairwiseMergeSort(cfg, memo=memo).sort(data, score_blocks=2, seed=seed)


class TestArrayCodec:
    @pytest.mark.parametrize("dtype", ["<i8", "<i4", "<f8", "|u1"])
    def test_round_trip_dtypes(self, dtype):
        arr = np.arange(13).astype(np.dtype(dtype))
        back = array_from_obj(json.loads(json.dumps(array_to_obj(arr))))
        assert back.dtype == arr.dtype
        assert np.array_equal(back, arr)

    def test_round_trip_2d(self):
        arr = np.arange(12, dtype=np.int64).reshape(3, 4)
        back = array_from_obj(array_to_obj(arr))
        assert back.shape == (3, 4) and np.array_equal(back, arr)

    def test_decoded_array_is_writable(self):
        back = array_from_obj(array_to_obj(np.arange(4)))
        back[0] = 7  # frombuffer views are read-only; the codec must copy

    def test_truncated_payload_rejected(self):
        obj = array_to_obj(np.arange(8, dtype=np.int64))
        obj["shape"] = [9]
        with pytest.raises(ValidationError):
            array_from_obj(obj)

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            array_from_obj({"dtype": "<i8"})


class TestResultRoundTrip:
    def test_bit_identical_via_json(self):
        result = sorted_result()
        wire = json.dumps(result_to_obj(result))
        back = result_from_obj(json.loads(wire))
        assert results_identical(back, result)
        assert back.values.dtype == result.values.dtype

    def test_memo_stats_delta_preserved(self):
        # Two sorts against one sorter: the second call's memo_stats is a
        # nonzero-hit delta, and it must survive the wire byte-for-byte.
        cfg = small_config()
        sorter = PairwiseMergeSort(cfg, memo="auto")
        data = generate("worst-case", cfg, cfg.tile_size * 4, seed=0)
        sorter.sort(data, score_blocks=2, seed=0)
        second = sorter.sort(data, score_blocks=2, seed=0)
        assert second.memo_stats is not None and second.memo_stats.hits > 0
        back = result_from_obj(json.loads(json.dumps(result_to_obj(second))))
        assert back.memo_stats == second.memo_stats

    def test_unmemoized_result_round_trips(self):
        result = sorted_result(memo=None)
        back = result_from_obj(result_to_obj(result))
        assert back.memo_stats is None
        assert results_identical(back, result)

    def test_without_values(self):
        result = sorted_result()
        obj = result_to_obj(result, include_values=False)
        assert obj["values"] is None
        back = result_from_obj(obj)
        assert back.values.size == 0
        assert results_identical(back, result, require_values=False)
        assert not results_identical(back, result)

    def test_derived_metrics_survive(self):
        result = sorted_result()
        back = result_from_obj(result_to_obj(result))
        assert back.total_shared_cycles() == result.total_shared_cycles()
        assert back.total_replays() == result.total_replays()
        assert back.kernel_cost() == result.kernel_cost()

    def test_segment_structure_not_materialized(self):
        result = sorted_result()
        back = result_from_obj(result_to_obj(result))
        for mine, theirs in zip(back.rounds, result.rounds):
            assert reports_identical(mine.merge_report, theirs.merge_report)
            assert len(mine.merge_report.step_segments) == len(
                theirs.merge_report.step_segments
            )


class TestConfigCodec:
    def test_round_trip(self):
        cfg = small_config(name="custom")
        assert config_from_obj(json.loads(json.dumps(config_to_obj(cfg)))) == cfg

    def test_invalid_config_rejected(self):
        obj = config_to_obj(small_config())
        obj["block_size"] = 33  # not a power of two
        with pytest.raises(ValueError):
            config_from_obj(obj)


class TestBenchPointCodec:
    def test_round_trip(self):
        point = BenchPoint(
            config_name="mgpu",
            device_name="Quadro M4000",
            input_name="worst-case",
            num_elements=123456,
            milliseconds=1.5,
            throughput_meps=82.3,
            replays_per_element=3.25,
            shared_cycles=1000,
            global_transactions=2000,
        )
        assert point_from_obj(json.loads(json.dumps(point_to_obj(point)))) == point

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            point_from_obj({"config_name": "x"})


class TestRequestSchemas:
    def test_simulate_preset_and_config_coalesce(self):
        by_preset = SimulateRequest.from_payload(
            {"preset": "mgpu-maxwell", "tiles": 4}
        )
        by_config = SimulateRequest.from_payload(
            {"config": config_to_obj(by_preset.config), "tiles": 4}
        )
        assert by_preset.coalesce_key() == by_config.coalesce_key()

    def test_simulate_key_sensitive_to_seed(self):
        a = SimulateRequest.from_payload({"preset": "mgpu-maxwell", "tiles": 4})
        b = SimulateRequest.from_payload(
            {"preset": "mgpu-maxwell", "tiles": 4, "seed": 1}
        )
        assert a.coalesce_key() != b.coalesce_key()

    def test_tiles_and_num_elements_exclusive(self):
        with pytest.raises(ValidationError):
            SimulateRequest.from_payload(
                {"preset": "mgpu-maxwell", "tiles": 4, "num_elements": 100}
            )

    def test_unknown_input_rejected(self):
        with pytest.raises(ValidationError):
            SimulateRequest.from_payload(
                {"preset": "mgpu-maxwell", "tiles": 2, "input": "nope"}
            )

    def test_needs_config_or_preset(self):
        with pytest.raises(ValidationError):
            SimulateRequest.from_payload({"tiles": 2})

    def test_non_object_body_rejected(self):
        with pytest.raises(ValidationError):
            SimulateRequest.from_payload([1, 2, 3])

    def test_construct_encoding_validated(self):
        with pytest.raises(ValidationError):
            ConstructRequest.from_payload(
                {"preset": "mgpu-maxwell", "tiles": 2, "encoding": "msgpack"}
            )

    def test_sweep_sizes_from_max_elements(self):
        req = SweepRequest.from_payload(
            {"config": config_to_obj(small_config()), "max_elements": 1000}
        )
        assert req.sizes == (96, 192, 384, 768)

    def test_sweep_rejects_empty_range(self):
        with pytest.raises(ValidationError):
            SweepRequest.from_payload(
                {"config": config_to_obj(small_config()), "max_elements": 10}
            )

    def test_sweep_key_ignores_request_phrasing(self):
        explicit = SweepRequest.from_payload(
            {"config": config_to_obj(small_config()), "sizes": [96, 192]}
        )
        derived = SweepRequest.from_payload(
            {"config": config_to_obj(small_config()), "max_elements": 200}
        )
        assert explicit.coalesce_key() == derived.coalesce_key()

    def test_sweep_unknown_device(self):
        with pytest.raises(ValidationError):
            SweepRequest.from_payload(
                {"preset": "mgpu-maxwell", "sizes": [1920], "device": "h100"}
            )


class TestScoringAndPaddingFields:
    """Parse-time scoring validation (against the engine registry) and
    the padding field the execution-engine refactor added to the wire."""

    def _simulate(self, **extra):
        payload = {"preset": "mgpu-maxwell", "tiles": 2}
        payload.update(extra)
        return SimulateRequest.from_payload(payload)

    def _sweep(self, **extra):
        payload = {"config": config_to_obj(small_config()), "sizes": [96]}
        payload.update(extra)
        return SweepRequest.from_payload(payload)

    def test_unknown_scoring_fails_at_parse_time_simulate(self):
        with pytest.raises(ValidationError, match="'scoring' must be one of"):
            self._simulate(scoring="warp-speed")

    def test_unknown_scoring_fails_at_parse_time_sweep(self):
        with pytest.raises(ValidationError, match="'scoring' must be one of"):
            self._sweep(scoring="warp-speed")

    def test_simulate_rejects_auto(self):
        # /simulate is a single concrete sort; routing happens in sweeps.
        with pytest.raises(ValidationError, match="'scoring'"):
            self._simulate(scoring="auto")

    def test_sweep_accepts_auto_and_defaults_to_registry_default(self):
        from repro.engine.registry import DEFAULT_SCORING

        assert self._sweep().scoring == DEFAULT_SCORING
        assert self._sweep(scoring="auto").scoring == "auto"

    def test_padding_defaults_to_stock_layout(self):
        assert self._simulate().padding == 0
        assert self._sweep().padding == 0

    def test_padding_splits_coalesce_keys(self):
        assert self._simulate().coalesce_key() \
            != self._simulate(padding=1).coalesce_key()
        assert self._sweep().coalesce_key() \
            != self._sweep(padding=1).coalesce_key()

    def test_negative_padding_rejected(self):
        with pytest.raises(ValidationError, match="'padding'"):
            self._simulate(padding=-1)
        with pytest.raises(ValidationError, match="'padding'"):
            self._sweep(padding=-1)

    def test_explicit_null_score_blocks_means_score_all(self):
        assert self._simulate(score_blocks=None).score_blocks is None
        assert self._simulate().score_blocks == 8


class TestMitigationField:
    """The ``mitigation`` wire field: parse-time validation against the
    mitigation registry, normalization against the legacy ``padding``
    knob, and coalesce-key hygiene."""

    def _simulate(self, **extra):
        payload = {"preset": "mgpu-maxwell", "tiles": 2}
        payload.update(extra)
        return SimulateRequest.from_payload(payload)

    def _sweep(self, **extra):
        payload = {"config": config_to_obj(small_config()), "sizes": [96]}
        payload.update(extra)
        return SweepRequest.from_payload(payload)

    def test_defaults_to_none(self):
        assert self._simulate().mitigation == "none"
        assert self._sweep().mitigation == "none"

    def test_unknown_spec_fails_at_parse_time(self):
        with pytest.raises(ValidationError, match="known backends"):
            self._simulate(mitigation="magic")
        with pytest.raises(ValidationError, match="known backends"):
            self._sweep(mitigation="magic")

    def test_spec_is_canonicalized(self):
        assert self._simulate(mitigation="padding").mitigation == "padding:1"

    def test_legacy_padding_and_spec_normalize_identically(self):
        """``padding: N`` and ``mitigation: "padding:N"`` must be the
        SAME request on the wire — identical fields, identical coalesce
        keys — or equivalent concurrent requests stop coalescing."""
        legacy = self._simulate(padding=2)
        spec = self._simulate(mitigation="padding:2")
        assert (legacy.padding, legacy.mitigation) == (2, "padding:2")
        assert (spec.padding, spec.mitigation) == (2, "padding:2")
        assert legacy.coalesce_key() == spec.coalesce_key()
        assert self._sweep(padding=2).coalesce_key() \
            == self._sweep(mitigation="padding:2").coalesce_key()

    def test_conflicting_layouts_rejected_at_parse_time(self):
        with pytest.raises(ValidationError, match="conflicting layout"):
            self._simulate(padding=2, mitigation="padding:1")
        with pytest.raises(ValidationError, match="conflicting layout"):
            self._sweep(padding=1, mitigation="cfree-sort")

    def test_cfree_specs_carry_no_native_padding(self):
        request = self._simulate(mitigation="cfree-sort")
        assert (request.padding, request.mitigation) == (0, "cfree-sort")

    def test_mitigation_splits_coalesce_keys(self):
        assert self._simulate().coalesce_key() \
            != self._simulate(mitigation="cfree-sort").coalesce_key()
        assert self._sweep(mitigation="cfree-sort").coalesce_key() \
            != self._sweep(mitigation="cfree-permute").coalesce_key()
