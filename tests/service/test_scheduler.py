"""The chunked job scheduler: manifests, requeue semantics, am-I-done.

The unit half drives :class:`JobScheduler` against a fake
``submit_chunk`` (no sockets): chunking shape, canonical fingerprints,
worker-failure requeue vs validation-failure permanence. The
integration half runs real manifests through a real router + fleet —
including the acceptance scenario: a worker hard-killed mid-manifest
has its chunks requeued and the job still completes on the survivor.
"""

import asyncio
import threading

import pytest

from repro.errors import ServiceError, ValidationError
from repro.service.protocol import SweepRequest
from repro.service.scheduler import JobScheduler, split_manifest
from repro.sort.serialize import config_to_obj
from tests.service.conftest import small_config

CFG = small_config()
CFG_OBJ = config_to_obj(CFG)


def manifest(sizes=None, inputs=("random", "worst-case"), **extra):
    body = {
        "config": CFG_OBJ,
        "inputs": list(inputs),
        "sizes": sizes or [CFG.tile_size * 2, CFG.tile_size * 4],
        "score_blocks": 2,
    }
    body.update(extra)
    return body


class TestSplitManifest:
    def test_chunks_are_input_major_contiguous(self):
        sizes = [CFG.tile_size * k for k in (2, 4, 8)]
        _, chunks, max_retries = split_manifest(
            manifest(sizes=sizes, chunk_sizes=2)
        )
        assert max_retries == 2  # the default
        assert [
            (c.input_name, c.sizes) for c in chunks
        ] == [
            ("random", tuple(sizes[:2])),
            ("random", tuple(sizes[2:])),
            ("worst-case", tuple(sizes[:2])),
            ("worst-case", tuple(sizes[2:])),
        ]
        assert [c.index for c in chunks] == [0, 1, 2, 3]

    def test_chunk_payloads_are_valid_sweep_bodies(self):
        _, chunks, _ = split_manifest(manifest(chunk_sizes=1))
        for chunk in chunks:
            parsed = SweepRequest.from_payload(chunk.payload)
            assert parsed.input_names == (chunk.input_name,)
            assert parsed.sizes == chunk.sizes

    def test_mitigations_expand_mitigation_major(self):
        """A ``mitigations`` list crosses the whole sweep per layout,
        mitigation-major, so index-order concatenation yields one
        contiguous sweep per spec (what the job report renders)."""
        sizes = [CFG.tile_size * k for k in (2, 4)]
        _, chunks, _ = split_manifest(
            manifest(sizes=sizes, chunk_sizes=2,
                     mitigations=["none", "cfree-sort"])
        )
        assert [
            (c.mitigation, c.input_name) for c in chunks
        ] == [
            ("none", "random"),
            ("none", "worst-case"),
            ("cfree-sort", "random"),
            ("cfree-sort", "worst-case"),
        ]
        for chunk in chunks:
            parsed = SweepRequest.from_payload(chunk.payload)
            assert parsed.mitigation == chunk.mitigation

    def test_mitigations_entries_canonicalized(self):
        _, chunks, _ = split_manifest(manifest(mitigations=["padding"]))
        assert {c.mitigation for c in chunks} == {"padding:1"}

    def test_single_mitigation_field_still_works(self):
        _, chunks, _ = split_manifest(manifest(mitigation="cfree-permute"))
        assert {c.mitigation for c in chunks} == {"cfree-permute"}

    def test_mitigations_validated(self):
        with pytest.raises(ValidationError, match="nonempty list"):
            split_manifest(manifest(mitigations=[]))
        with pytest.raises(ValidationError, match="known backends"):
            split_manifest(manifest(mitigations=["magic"]))
        with pytest.raises(ValidationError, match="unique"):
            split_manifest(manifest(mitigations=["padding", "padding:1"]))
        with pytest.raises(ValidationError, match="exclusive"):
            split_manifest(
                manifest(mitigations=["none"], mitigation="cfree-sort")
            )
        with pytest.raises(ValidationError, match="padding"):
            split_manifest(manifest(mitigations=["none"], padding=1))

    def test_equivalent_manifests_produce_identical_fingerprints(self):
        """Two phrasings of the same grid (explicit config vs the same
        grid again with scheduler knobs attached) chunk to identical
        coalescing keys — fleet-wide single flight and the disk cache
        apply across manifest authors."""
        _, a, _ = split_manifest(manifest(chunk_sizes=2))
        _, b, _ = split_manifest(manifest(chunk_sizes=2, max_retries=9))
        keys = lambda chunks: [  # noqa: E731
            SweepRequest.from_payload(c.payload).coalesce_key()
            for c in chunks
        ]
        assert keys(a) == keys(b)

    def test_scheduler_knobs_validated(self):
        with pytest.raises(ValidationError, match="chunk_sizes"):
            split_manifest(manifest(chunk_sizes=0))
        with pytest.raises(ValidationError, match="chunk_sizes"):
            split_manifest(manifest(chunk_sizes=True))
        with pytest.raises(ValidationError, match="max_retries"):
            split_manifest(manifest(max_retries=-1))
        with pytest.raises(ValidationError, match="max_retries"):
            split_manifest(manifest(max_retries="lots"))

    def test_sweep_validation_still_applies(self):
        with pytest.raises(ValidationError, match="input"):
            split_manifest(manifest(inputs=["made-up"]))
        with pytest.raises(ValidationError):
            split_manifest("not a dict")


def drive(submit_chunk, body, *, chunk_concurrency=4, timeout=10.0):
    """Run one job to completion on a private loop; returns (scheduler,
    final status dict)."""

    async def run():
        scheduler = JobScheduler(
            submit_chunk, chunk_concurrency=chunk_concurrency
        )
        ack = scheduler.submit(body)
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            status = scheduler.status(ack["job_id"])
            if status["done"]:
                return scheduler, status
            if asyncio.get_running_loop().time() > deadline:
                raise AssertionError(f"job never finished: {status}")
            await asyncio.sleep(0.01)

    return asyncio.run(run())


class TestJobSchedulerUnit:
    def test_job_completes_points_in_manifest_order(self):
        async def submit(payload):
            # Identify each chunk by its (input, first size) so the
            # concatenation order is observable.
            return {
                "points": [
                    f"{payload['inputs'][0]}@{n}" for n in payload["sizes"]
                ]
            }

        sizes = [CFG.tile_size * k for k in (2, 4, 8)]
        scheduler, status = drive(
            submit, manifest(sizes=sizes, chunk_sizes=2)
        )
        assert status["status"] == "done"
        assert status["retries"] == 0
        assert status["points"] == [
            f"{name}@{n}"
            for name in ("random", "worst-case")
            for n in sizes
        ]
        assert status["inputs"] == ["random", "worst-case"]
        assert status["sizes"] == sizes
        assert scheduler.stats()["chunks"]["done"] == 4

    def test_worker_failure_requeues_until_success(self):
        failed_once = set()

        async def flaky(payload):
            key = (payload["inputs"][0], tuple(payload["sizes"]))
            if key not in failed_once:
                failed_once.add(key)
                raise ServiceError("shard died mid-chunk")
            return {"points": ["ok"]}

        scheduler, status = drive(flaky, manifest(chunk_sizes=1))
        assert status["status"] == "done"
        # Every chunk failed exactly once before succeeding.
        assert status["retries"] == status["chunks"]["total"] == 4
        assert scheduler.chunk_retries == 4

    def test_retries_exhausted_fails_the_job(self):
        async def always_down(payload):
            raise ServiceError("no shard could serve the request")

        _, status = drive(
            always_down, manifest(chunk_sizes=4, max_retries=1)
        )
        assert status["status"] == "failed"
        assert status["done"] is True
        assert "points" not in status
        errors = status["errors"]
        assert errors and all(
            "gave up after 2 attempts" in e["error"] for e in errors
        )

    def test_validation_failure_is_permanent(self):
        calls = []

        async def reject(payload):
            calls.append(payload)
            raise ValidationError("shard rejected chunk: bad scoring")

        _, status = drive(reject, manifest(chunk_sizes=4, max_retries=5))
        assert status["status"] == "failed"
        assert status["retries"] == 0  # never requeued
        assert len(calls) == 2  # one call per chunk, no retries

    def test_unknown_job_is_none(self):
        scheduler = JobScheduler(lambda payload: None)
        assert scheduler.status("job-404-cafebabe") is None

    def test_bad_concurrency_rejected(self):
        with pytest.raises(ValidationError, match="chunk_concurrency"):
            JobScheduler(lambda payload: None, chunk_concurrency=0)


class TestJobsThroughRouter:
    def test_job_matches_direct_sweep(self, fleet_factory):
        sizes = [CFG.tile_size * 2, CFG.tile_size * 4]
        with fleet_factory(shards=2) as box:
            ack = box.client.submit_job(manifest(sizes=sizes, chunk_sizes=1))
            assert ack["ok"] and ack["chunks"] == 4
            status = box.client.wait_for_job(ack["job_id"], timeout=60.0)
            assert status["status"] == "done"
            assert status["chunks"]["done"] == 4
            direct = box.client.sweep(
                config=CFG_OBJ,
                inputs=["random", "worst-case"],
                sizes=sizes,
                score_blocks=2,
            )
            from repro.service.protocol import point_from_obj

            assert [
                point_from_obj(p) for p in status["points"]
            ] == direct.points

    def test_invalid_manifest_rejected_with_400(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            with pytest.raises(ValidationError, match="chunk_sizes"):
                box.client.submit_job(manifest(chunk_sizes=0))
            with pytest.raises(ValidationError, match="unknown job"):
                box.client.job_status("job-999-deadbeef")

    def test_killed_worker_mid_manifest_requeues_and_completes(
        self, fleet_factory
    ):
        """The acceptance scenario: hard-kill a worker while it holds
        in-flight chunks; the scheduler requeues them (visible in
        ``retries``) and the am-I-done probe eventually flips done with
        the full point set, served by the surviving shard."""
        with fleet_factory(shards=2) as box:
            first_call = threading.Event()
            hold = threading.Event()
            calls = []
            for i in range(len(box.fleet)):
                service = box.fleet.service(i)
                original = service._compute_sweep

                def gated(request, _orig=original, _i=i):
                    calls.append(_i)
                    first_call.set()
                    assert hold.wait(60), "gate never released"
                    return _orig(request)

                service._compute_sweep = gated

            sizes = [CFG.tile_size * k for k in (1, 2, 4, 8, 16, 32)]
            ack = box.client.submit_job(
                manifest(
                    sizes=sizes,
                    inputs=("random",),
                    chunk_sizes=1,
                    max_retries=3,
                )
            )
            assert first_call.wait(30), "no chunk reached a worker"
            victim = calls[0]
            box.fleet.kill(victim)
            hold.set()
            status = box.client.wait_for_job(ack["job_id"], timeout=120.0)
            assert status["status"] == "done", status.get("errors")
            assert status["retries"] >= 1
            assert status["chunks"]["done"] == len(sizes)
            assert len(status["points"]) == len(sizes)
            # The router noticed the crash and the survivor served it.
            health = box.client.healthz()["shards"]
            assert health[box.fleet.urls[victim]] == "down"
            stats = box.client.stats()
            assert stats["chunk_retries"] >= 1
