"""Loopback integration tests for the daemon.

Slow-computation scenarios (coalescing, backpressure, timeouts, drain)
are made deterministic by patching ``ReproService._compute_simulate``
with an event-gated wrapper: the leader blocks until the test releases
it, so concurrent requests are guaranteed to overlap.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import BackpressureError, ServiceError, ValidationError
from repro.inputs.generators import generate
from repro.service.server import ReproService
from repro.sort.pairwise import PairwiseMergeSort
from repro.sort.serialize import config_to_obj, results_identical

from tests.service.conftest import small_config

CFG_OBJ = None


def cfg_obj():
    global CFG_OBJ
    if CFG_OBJ is None:
        CFG_OBJ = config_to_obj(small_config())
    return CFG_OBJ


def gated_simulate(monkeypatch):
    """Patch the simulate compute to block until the test says go."""
    started = threading.Event()
    release = threading.Event()
    original = ReproService._compute_simulate

    def slow(self, request):
        started.set()
        assert release.wait(30), "test never released the gated compute"
        return original(self, request)

    monkeypatch.setattr(ReproService, "_compute_simulate", slow)
    return started, release


class TestRoundTrip:
    def test_simulate_bit_identical_to_direct_call(self, service_factory):
        with service_factory() as box:
            reply = box.client.simulate(
                config=cfg_obj(), tiles=4, score_blocks=2, seed=0
            )
            cfg = small_config()
            data = generate("worst-case", cfg, cfg.tile_size * 4, seed=0)
            direct = PairwiseMergeSort(cfg, memo="auto").sort(
                data, score_blocks=2, seed=0
            )
            assert reply.sorted_ok
            assert results_identical(reply.result, direct)

    def test_construct_matches_library(self, service_factory):
        from repro.adversary.permutation import worst_case_permutation

        with service_factory() as box:
            cfg = small_config()
            for encoding in ("b64", "json"):
                served = box.client.construct(
                    config=cfg_obj(), tiles=2, encoding=encoding
                )
                direct = worst_case_permutation(cfg, cfg.tile_size * 2)
                assert served.dtype == direct.dtype
                assert np.array_equal(served, direct)

    def test_sweep_matches_local_run_points(self, service_factory):
        from repro.engine import execute_items, sweep_items
        from repro.gpu.device import QUADRO_M4000

        cfg = small_config()
        sizes = [cfg.tile_size * 2, cfg.tile_size * 4]
        with service_factory() as box:
            reply = box.client.sweep(
                config=cfg_obj(),
                inputs=["random", "worst-case"],
                sizes=sizes,
                exact_threshold=cfg.tile_size * 8,
                score_blocks=4,
            )
            local = execute_items(
                sweep_items(
                    cfg,
                    QUADRO_M4000,
                    ["random", "worst-case"],
                    sizes,
                    exact_threshold=cfg.tile_size * 8,
                    score_blocks=4,
                )
            )
            assert reply.points == local
            assert reply.sizes == sizes

    def test_healthz(self, service_factory):
        with service_factory() as box:
            probe = box.client.healthz()
            assert probe["status"] == "ok"


class TestCoalescing:
    def test_16_identical_requests_one_sort(self, service_factory, monkeypatch):
        started, release = gated_simulate(monkeypatch)
        with service_factory(queue_limit=4) as box:
            client = box.client

            def call():
                return client.simulate(
                    config=cfg_obj(), tiles=2, score_blocks=2, seed=0
                )

            with ThreadPoolExecutor(max_workers=16) as pool:
                futures = [pool.submit(call) for _ in range(16)]
                assert started.wait(15)
                # The leader is blocked; wait until all 16 requests have
                # reached the server, so the other 15 must coalesce.
                for _ in range(600):
                    if box.service.stats.requests["/simulate"] >= 16:
                        break
                    threading.Event().wait(0.05)
                assert box.service.stats.requests["/simulate"] >= 16
                release.set()
                replies = [f.result() for f in futures]

            stats = client.stats()
            assert stats["executed"]["simulate"] == 1
            assert stats["batching"]["primary"] == 1
            assert stats["batching"]["coalesced"] == 15
            assert sum(r.coalesced for r in replies) == 15
            first = replies[0].result
            assert all(
                results_identical(r.result, first) for r in replies[1:]
            )

    def test_different_seeds_do_not_coalesce(self, service_factory):
        with service_factory() as box:
            box.client.simulate(config=cfg_obj(), tiles=2, seed=0)
            box.client.simulate(config=cfg_obj(), tiles=2, seed=1)
            stats = box.client.stats()
            assert stats["executed"]["simulate"] == 2
            assert stats["batching"]["coalesced"] == 0


class TestBackpressure:
    def test_saturated_queue_rejects_with_429(
        self, service_factory, monkeypatch
    ):
        started, release = gated_simulate(monkeypatch)
        with service_factory(queue_limit=1) as box:
            with ThreadPoolExecutor(max_workers=1) as pool:
                blocked = pool.submit(
                    box.client.simulate, config=cfg_obj(), tiles=2, seed=0
                )
                assert started.wait(15)
                # Distinct request while the only slot is held → 429.
                with pytest.raises(BackpressureError) as info:
                    box.client.simulate(config=cfg_obj(), tiles=2, seed=99)
                assert info.value.retry_after > 0
                # Identical request still coalesces despite saturation —
                # but would block on the gated leader, so just verify the
                # stats took the rejection.
                assert box.client.stats()["backpressure"]["rejected"] == 1
                release.set()
                assert blocked.result().sorted_ok

    def test_healthz_and_stats_bypass_admission(
        self, service_factory, monkeypatch
    ):
        started, release = gated_simulate(monkeypatch)
        with service_factory(queue_limit=1) as box:
            with ThreadPoolExecutor(max_workers=1) as pool:
                blocked = pool.submit(
                    box.client.simulate, config=cfg_obj(), tiles=2
                )
                assert started.wait(15)
                assert box.client.healthz()["status"] == "ok"
                assert box.client.stats()["batching"]["in_flight"] == 1
                release.set()
                blocked.result()


class TestTimeouts:
    def test_slow_request_times_out_with_504(
        self, service_factory, monkeypatch
    ):
        started, release = gated_simulate(monkeypatch)
        with service_factory(request_timeout=0.2) as box:
            with pytest.raises(ServiceError) as info:
                box.client.simulate(config=cfg_obj(), tiles=2)
            assert info.value.status == 504
            assert box.client.stats()["responses"]["timeouts"] == 1
            release.set()


class TestValidationAndRouting:
    def test_unknown_preset_is_400(self, service_factory):
        with service_factory() as box:
            with pytest.raises(ValidationError, match="unknown preset"):
                box.client.simulate(preset="nope", tiles=2)
            assert box.client.stats()["responses"]["validation_errors"] == 1

    def test_unknown_path_is_404(self, service_factory):
        with service_factory() as box:
            with pytest.raises(ValidationError):
                box.client.request("GET", "/nope")

    def test_wrong_method_is_405(self, service_factory):
        with service_factory() as box:
            with pytest.raises(ValidationError, match="expects POST"):
                box.client.request("GET", "/simulate")

    def test_invalid_json_body_is_400(self, service_factory):
        import http.client

        with service_factory() as box:
            conn = http.client.HTTPConnection(
                box.client.host, box.client.port, timeout=10
            )
            try:
                conn.request("POST", "/simulate", body=b"{not json")
                response = conn.getresponse()
                assert response.status == 400
            finally:
                conn.close()

    def test_validation_error_does_not_occupy_queue(self, service_factory):
        with service_factory(queue_limit=1) as box:
            for _ in range(5):
                with pytest.raises(ValidationError):
                    box.client.simulate(preset="nope", tiles=2)
            assert box.client.stats()["batching"]["in_flight"] == 0
            # And the gate is still usable afterwards.
            assert box.client.simulate(config=cfg_obj(), tiles=2).sorted_ok


class TestSharedCaches:
    def test_memo_shared_across_requests(self, service_factory):
        with service_factory() as box:
            first = box.client.simulate(config=cfg_obj(), tiles=2, seed=0)
            second = box.client.simulate(config=cfg_obj(), tiles=2, seed=0)
            assert first.result.memo_stats.misses > 0
            # The daemon's process-lifetime memo serves the repeat run.
            assert second.result.memo_stats.misses == 0
            assert second.result.memo_stats.hits > 0
            assert box.client.stats()["memo"]["hits"] > 0

    def test_bench_cache_attached(self, service_factory, tmp_path):
        cfg = small_config()
        with service_factory(cache_dir=str(tmp_path), use_cache=True) as box:
            kwargs = dict(
                config=cfg_obj(),
                sizes=[cfg.tile_size * 2],
                inputs=["random"],
                exact_threshold=cfg.tile_size * 8,
                score_blocks=4,
            )
            cold = box.client.sweep(**kwargs)
            warm = box.client.sweep(**kwargs)
            assert warm.points == cold.points
            # Hit counters live on the sweep runners' own cache handles;
            # the service-level view exposes the shared on-disk state.
            disk = box.client.stats()["bench_cache"]
            assert disk["point_entries"] >= 1
            assert box.client.stats()["executed"]["sweep"] == 2


class TestShutdown:
    def test_graceful_drain_finishes_in_flight_work(
        self, service_factory, monkeypatch
    ):
        started, release = gated_simulate(monkeypatch)
        with service_factory() as box:
            with ThreadPoolExecutor(max_workers=1) as pool:
                blocked = pool.submit(
                    box.client.simulate, config=cfg_obj(), tiles=2
                )
                assert started.wait(15)
                assert box.client.shutdown()["status"] == "draining"
                release.set()
                # The in-flight request completes despite the shutdown.
                assert blocked.result().sorted_ok
            box.thread.join(30)
            assert not box.thread.is_alive()
        assert box.holder["drained"] is True

    def test_draining_rejects_new_work_on_live_connections(
        self, service_factory, monkeypatch
    ):
        # A keep-alive connection opened before /shutdown stays up while
        # the daemon drains, but new compute on it gets 503 + Retry-After.
        import http.client
        import json as jsonlib

        started, release = gated_simulate(monkeypatch)
        with service_factory() as box:
            with ThreadPoolExecutor(max_workers=1) as pool:
                blocked = pool.submit(
                    box.client.simulate, config=cfg_obj(), tiles=2
                )
                assert started.wait(15)
                conn = http.client.HTTPConnection(
                    box.client.host, box.client.port, timeout=30
                )
                try:
                    conn.request("GET", "/healthz")
                    assert conn.getresponse().read() is not None
                    box.client.shutdown()
                    conn.request(
                        "POST",
                        "/simulate",
                        body=jsonlib.dumps(
                            {"config": cfg_obj(), "tiles": 2, "seed": 7}
                        ),
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    assert response.status == 503
                    assert response.getheader("Retry-After") is not None
                    assert b"draining" in response.read()
                finally:
                    conn.close()
                release.set()
                assert blocked.result().sorted_ok
            box.thread.join(30)
            assert not box.thread.is_alive()
        # With the loop gone, fresh connections are refused outright.
        with pytest.raises(ServiceError):
            box.client.healthz()
        assert box.holder["drained"] is True


class TestScoringAndPadding:
    def test_unknown_scoring_is_400_not_500(self, service_factory):
        """The registry check runs at parse time, so a bogus scoring is a
        client error — never an internal one from deep in a runner."""
        with service_factory() as box:
            with pytest.raises(ValidationError, match="'scoring'"):
                box.client.simulate(
                    config=cfg_obj(), tiles=2, scoring="warp-speed"
                )
            responses = box.client.stats()["responses"]
            assert responses["validation_errors"] == 1
            assert responses.get("internal_errors", 0) == 0

    def test_unknown_scoring_on_sweep_is_400(self, service_factory):
        with service_factory() as box:
            with pytest.raises(ValidationError, match="'scoring'"):
                box.client.sweep(
                    config=cfg_obj(), sizes=[96], scoring="warp-speed"
                )

    def test_padded_simulate_round_trip(self, service_factory):
        """A padded request is served by a padded sorter and must match
        the local padded result bit for bit."""
        from repro.sort.pairwise import PairwiseMergeSort
        from repro.sort.serialize import results_identical

        cfg = small_config()
        data = generate("worst-case", cfg, cfg.tile_size * 2, seed=0)
        local = PairwiseMergeSort(cfg, padding=1).sort(
            data, score_blocks=2, seed=0
        )
        with service_factory() as box:
            reply = box.client.simulate(
                config=cfg_obj(), tiles=2, score_blocks=2, padding=1
            )
            assert reply.sorted_ok
            assert results_identical(reply.result, local)
            unpadded = box.client.simulate(
                config=cfg_obj(), tiles=2, score_blocks=2
            )
            assert not results_identical(unpadded.result, local)
