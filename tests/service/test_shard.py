"""The shard router: consistent hashing, fleet-wide coalescing, failover.

Ring properties are tested in isolation (determinism, balance, minimal
remap on resize); everything else drives a real two-worker fleet behind
a real router over loopback HTTP — the same harness
``repro-mergesort serve --shards N`` boots — including the acceptance
scenarios: identical concurrent requests execute **once across the
whole fleet**, and a hard-killed worker's keyspace fails over to the
survivor.
"""

import threading
from collections import Counter

import numpy as np
import pytest

from repro.errors import BackpressureError, ValidationError
from repro.service.client import ServiceClient
from repro.service.shard import HashRing
from repro.sort.serialize import config_to_obj, results_identical
from tests.service.conftest import small_config

CFG_OBJ = config_to_obj(small_config())


class TestHashRing:
    def test_deterministic(self):
        ring = HashRing(["a", "b", "c"])
        again = HashRing(["a", "b", "c"])
        for i in range(50):
            key = f"fingerprint-{i}"
            assert ring.node_for(key) == again.node_for(key)

    def test_balanced_split(self):
        ring = HashRing(["a", "b", "c"], replicas=64)
        counts = Counter(ring.node_for(f"key-{i}") for i in range(3000))
        assert set(counts) == {"a", "b", "c"}
        # Virtual nodes keep the split within a loose band of fair share.
        for node in ("a", "b", "c"):
            assert 500 <= counts[node] <= 1500

    def test_preference_lists_every_node_first_is_owner(self):
        ring = HashRing(["a", "b", "c"])
        for i in range(20):
            pref = ring.preference(f"key-{i}")
            assert sorted(pref) == ["a", "b", "c"]
            assert pref[0] == ring.node_for(f"key-{i}")

    def test_resize_remaps_a_minority_of_keys(self):
        """The consistent-hashing property: growing 3 → 4 nodes moves
        roughly 1/4 of the keyspace, nowhere near a full reshuffle."""
        keys = [f"key-{i}" for i in range(2000)]
        small = HashRing(["a", "b", "c"])
        grown = HashRing(["a", "b", "c", "d"])
        moved = sum(
            small.node_for(k) != grown.node_for(k) for k in keys
        )
        assert 0 < moved < len(keys) // 2

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValidationError, match="at least one node"):
            HashRing([])
        with pytest.raises(ValidationError, match="duplicate"):
            HashRing(["a", "a"])
        with pytest.raises(ValidationError, match="replicas"):
            HashRing(["a"], replicas=0)


class TestRouterBasics:
    def test_healthz_reports_every_shard_up(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            health = box.client.healthz()
            assert health["status"] == "ok"
            assert sorted(health["shards"]) == sorted(box.fleet.urls)
            assert set(health["shards"].values()) == {"up"}

    def test_simulate_through_router_matches_direct(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            routed = box.client.simulate(
                config=CFG_OBJ, tiles=4, input="worst-case"
            )
            assert routed.sorted_ok
            # The same request straight to the owning worker is
            # score-identical: the router adds routing, not computation.
            # (memo_stats legitimately differ — the repeat hits the
            # worker's warm memo — so compare values and scores, not
            # the full results_identical predicate.)
            direct_url = box.router.ring.node_for(
                _simulate_key(tiles=4)
            )
            direct = ServiceClient(direct_url, timeout=90.0).simulate(
                config=CFG_OBJ, tiles=4, input="worst-case"
            )
            assert np.array_equal(
                routed.result.values, direct.result.values
            )
            assert [r.replays for r in routed.result.rounds] == [
                r.replays for r in direct.result.rounds
            ]

    def test_identical_requests_route_to_one_shard(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            before = dict(box.router.shard_requests)
            for _ in range(3):
                box.client.simulate(config=CFG_OBJ, tiles=4, input="random")
            deltas = {
                url: box.router.shard_requests[url] - before[url]
                for url in before
            }
            assert sorted(deltas.values()) == [0, 3]

    def test_distinct_requests_spread_over_shards(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            before = dict(box.router.shard_requests)
            for seed in range(12):
                box.client.simulate(
                    config=CFG_OBJ, tiles=2, input="random", seed=seed
                )
            deltas = [
                box.router.shard_requests[url] - before[url]
                for url in before
            ]
            # Twelve distinct fingerprints: both shards should see work.
            assert sum(deltas) == 12
            assert all(d > 0 for d in deltas)

    def test_unknown_endpoint_404(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            with pytest.raises(ValidationError, match="unknown endpoint"):
                box.client.request("GET", "/nope")


def _simulate_key(*, tiles, input="worst-case", seed=0):
    from repro.service.protocol import SimulateRequest

    return SimulateRequest.from_payload(
        {"config": CFG_OBJ, "tiles": tiles, "input": input, "seed": seed}
    ).coalesce_key()


class TestFleetWideCoalescing:
    def test_identical_concurrent_requests_execute_once(self, fleet_factory):
        """The tentpole guarantee: N identical requests arriving at the
        router concurrently cause exactly ONE computation across the
        entire fleet; every other caller is served by coalescing."""
        with fleet_factory(shards=2) as box:
            executed = []
            release = threading.Event()
            for i in range(len(box.fleet)):
                service = box.fleet.service(i)
                original = service._compute_simulate

                def gated(request, _orig=original, _i=i):
                    executed.append(_i)
                    assert release.wait(30), "gate never released"
                    return _orig(request)

                service._compute_simulate = gated

            replies = []
            errors = []

            def call():
                try:
                    client = ServiceClient(
                        f"http://127.0.0.1:{box.router.port}", timeout=90.0
                    )
                    replies.append(
                        client.simulate(
                            config=CFG_OBJ, tiles=4, input="worst-case"
                        )
                    )
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append(exc)

            threads = [threading.Thread(target=call) for _ in range(6)]
            for thread in threads:
                thread.start()
            # Wait until the one primary is inside the gated compute,
            # then let it finish; the rest must join it, not re-execute.
            deadline = threading.Event()
            for _ in range(200):
                if executed:
                    break
                deadline.wait(0.05)
            release.set()
            for thread in threads:
                thread.join(60)
            assert not errors, errors
            assert len(executed) == 1, (
                f"fleet ran the computation {len(executed)} times"
            )
            assert len(replies) == 6
            assert sum(r.coalesced for r in replies) == 5
            for reply in replies[1:]:
                assert results_identical(reply.result, replies[0].result)


class TestFailover:
    def test_killed_shard_fails_over_and_reports_down(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            # Find a request owned by worker 0's URL, then kill worker 0:
            # the router must replay it on the survivor.
            victim_url = box.fleet.urls[0]
            seed = next(
                s
                for s in range(64)
                if box.router.ring.node_for(
                    _simulate_key(tiles=2, input="random", seed=s)
                )
                == victim_url
            )
            box.fleet.kill(0)
            reply = box.client.simulate(
                config=CFG_OBJ, tiles=2, input="random", seed=seed
            )
            assert reply.sorted_ok
            health = box.client.healthz()
            assert health["shards"][victim_url] == "down"
            other = box.fleet.urls[1]
            assert health["shards"][other] == "up"

    def test_metrics_track_shard_health(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            dead_url = box.fleet.urls[1]
            # A request owned by the victim, so the router actually
            # contacts it, notices the crash, and marks it down.
            seed = next(
                s
                for s in range(64)
                if box.router.ring.node_for(
                    _simulate_key(tiles=2, input="random", seed=s)
                )
                == dead_url
            )
            box.fleet.kill(1)
            box.client.simulate(
                config=CFG_OBJ, tiles=2, input="random", seed=seed
            )
            text = box.client.metrics()
            assert f'repro_shard_up{{shard="{dead_url}"}} 0' in text


class TestMetricsEndpoint:
    def test_router_metrics_prometheus_text(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            box.client.simulate(config=CFG_OBJ, tiles=4)
            text = box.client.metrics()
            assert "# TYPE repro_requests_total counter" in text
            assert 'repro_requests_total{path="/simulate"} 1' in text
            assert "# TYPE repro_queue_depth gauge" in text
            assert "repro_coalesce_primary_total 1" in text
            for url in box.fleet.urls:
                assert f'repro_shard_up{{shard="{url}"}} 1' in text
            assert 'repro_jobs{state="running"} 0' in text
            assert "repro_chunk_retries_total 0" in text

    def test_worker_metrics_include_process_memo(self, fleet_factory):
        with fleet_factory(shards=2) as box:
            box.client.simulate(config=CFG_OBJ, tiles=4, input="random")
            owner = box.router.ring.node_for(
                _simulate_key(tiles=4, input="random")
            )
            text = ServiceClient(owner, timeout=30.0).metrics()
            assert "# TYPE repro_memo_misses_total counter" in text
            assert "repro_memo_process_misses_total" in text
            assert 'repro_executed_total{kind="simulate"} 1' in text

    def test_metrics_content_type(self, fleet_factory):
        import http.client

        with fleet_factory(shards=2) as box:
            conn = http.client.HTTPConnection(
                "127.0.0.1", box.router.port, timeout=30
            )
            try:
                conn.request("GET", "/metrics")
                response = conn.getresponse()
                assert response.status == 200
                assert response.getheader("Content-Type") == (
                    "text/plain; version=0.0.4; charset=utf-8"
                )
                response.read()
            finally:
                conn.close()


class TestQuotas:
    def test_router_quota_429_with_retry_after(self, fleet_factory):
        with fleet_factory(
            shards=2, router={"quota_per_minute": 2}
        ) as box:
            client = ServiceClient(
                f"http://127.0.0.1:{box.router.port}",
                timeout=30.0,
                client_id="greedy",
            )
            for _ in range(2):
                client.simulate(config=CFG_OBJ, tiles=2)
            with pytest.raises(BackpressureError, match="quota") as info:
                client.simulate(config=CFG_OBJ, tiles=2)
            assert info.value.retry_after > 0
            # A different client identity still gets served.
            other = ServiceClient(
                f"http://127.0.0.1:{box.router.port}",
                timeout=30.0,
                client_id="patient",
            )
            assert other.simulate(config=CFG_OBJ, tiles=2).sorted_ok
            # Control endpoints are never metered.
            assert client.healthz()["status"] == "ok"
            assert box.client.stats()["backpressure"]["quota_rejected"] == 1

    def test_worker_quota_enforced_without_router(self, service_factory):
        with service_factory(quota_per_minute=1) as box:
            box.client.simulate(config=CFG_OBJ, tiles=2)
            with pytest.raises(BackpressureError, match="quota"):
                box.client.simulate(config=CFG_OBJ, tiles=2)
