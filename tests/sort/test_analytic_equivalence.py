"""The analytic engine's eligibility, serving, and theory-bound contracts.

The loop ≡ vectorized ≡ analytic bit-identity *matrix* moved to
``tests/engine/test_engine_equivalence.py``, which runs the closed form
(with padding and sampling) through the registered ``analytic`` engine
against the loop oracle alongside every other engine. What stays here is
what the engine suite does not exercise: the eligibility predicate and
model detection, the served round-trip through the serialization layer,
and the theory module's per-round cycle bound.
"""

import numpy as np
import pytest

from repro.adversary.theory import predicted_warp_transactions
from repro.analytic import (
    ANALYTIC_FAMILIES,
    AnalyticEngine,
    analytic_model,
    detect_model,
    is_analytic_eligible,
)
from repro.errors import ValidationError
from repro.inputs.generators import generate
from repro.sort.pairwise import PairwiseMergeSort
from repro.sort.serialize import result_from_obj, result_to_obj, results_identical
from tests.engine.comparison import CONFIGS

FAMILIES = sorted(ANALYTIC_FAMILIES)


class TestEligibility:
    def test_families_are_eligible(self):
        # 8 tiles: sawtooth needs its tooth period (n/8) to be a tile
        # multiple, the tightest of the four families' constraints.
        cfg = CONFIGS["small-e"]
        for name in FAMILIES:
            assert is_analytic_eligible(name, cfg, cfg.tile_size * 8), name

    def test_sawtooth_needs_tile_aligned_teeth(self):
        cfg = CONFIGS["small-e"]
        assert not is_analytic_eligible("sawtooth", cfg, cfg.tile_size * 4)

    @pytest.mark.parametrize("input_name", ["random", "few-unique", "conflict-heavy"])
    def test_unstructured_inputs_are_not(self, input_name):
        cfg = CONFIGS["small-e"]
        assert not is_analytic_eligible(input_name, cfg, cfg.tile_size * 4)

    def test_analytic_scoring_rejects_unrecognized_input(self):
        cfg = CONFIGS["small-e"]
        data = generate("random", cfg, cfg.tile_size * 4, seed=0)
        sorter = PairwiseMergeSort(cfg, scoring="analytic")
        with pytest.raises(ValidationError):
            sorter.sort(data)

    @pytest.mark.parametrize("input_name", FAMILIES)
    def test_detect_model_recognizes_generated_families(self, input_name):
        cfg = CONFIGS["pow2-e"]
        n = cfg.tile_size * 8
        data = generate(input_name, cfg, n, seed=0)
        model = detect_model(data, cfg)
        assert model.num_elements == n
        np.testing.assert_array_equal(
            model.output_values(), np.sort(data, kind="stable")
        )

    def test_reverse_requires_strict_descent(self):
        """A non-strict descending run breaks the all-B-first mask (stable
        merge takes ties from A), so it must fall through — here to the
        sorted model via np.sort equality failing → ValidationError."""
        cfg = CONFIGS["small-e"]
        data = np.arange(cfg.tile_size * 2, dtype=np.int64)[::-1].copy()
        data[1] = data[0]  # introduce one tie at the top
        with pytest.raises(ValidationError):
            detect_model(data, cfg)

    def test_explicit_memo_rejected_for_analytic(self):
        from repro.dmm.memo import ConflictMemo

        with pytest.raises(ValidationError, match="memo"):
            PairwiseMergeSort(
                CONFIGS["small-e"], scoring="analytic", memo=ConflictMemo()
            )


class TestServedRoundTrip:
    """A result served over the wire must decode bit-identical to the one
    the engine produced directly (``results_identical`` is the service
    suite's comparator, so use it here verbatim)."""

    @pytest.mark.parametrize("input_name", FAMILIES)
    def test_serialize_round_trip(self, input_name):
        cfg = CONFIGS["small-e"]
        direct = PairwiseMergeSort(cfg, scoring="analytic").sort(
            generate(input_name, cfg, cfg.tile_size * 8, seed=42)
        )
        served = result_from_obj(result_to_obj(direct))
        assert results_identical(direct, served)

    def test_engine_matches_sorter_entry_point(self):
        """``AnalyticEngine.sort_result`` on a prebuilt model is the same
        object graph the ``scoring="analytic"`` sorter produces from the
        raw array."""
        cfg = CONFIGS["large-e"]
        n = cfg.tile_size * 8
        model = analytic_model("sawtooth", cfg, n)
        from_engine = AnalyticEngine(cfg).sort_result(model)
        from_sorter = PairwiseMergeSort(cfg, scoring="analytic").sort(
            generate("sawtooth", cfg, n, seed=0)
        )
        assert results_identical(from_engine, from_sorter)

    def test_values_dropped_round_trip(self):
        cfg = CONFIGS["small-e"]
        model = analytic_model("worst-case", cfg, cfg.tile_size * 4)
        direct = AnalyticEngine(cfg).sort_result(model, include_values=False)
        assert direct.values.size == 0
        served = result_from_obj(result_to_obj(direct, include_values=False))
        assert results_identical(direct, served, require_values=False)


class TestTheoryBound:
    """``predicted_warp_transactions`` is a *lower bound* on the serialized
    cycles of one warp merge pass (see its docstring contract). Assert it
    per constructible round against the simulator's measured cycles."""

    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_bound_holds_per_constructible_round(self, config_name):
        cfg = CONFIGS[config_name]
        n = cfg.tile_size * 8
        result = PairwiseMergeSort(cfg).sort(generate("worst-case", cfg, n, seed=0))
        bound = predicted_warp_transactions(cfg.warp_size, cfg.elements_per_thread)
        warp_passes = n // (cfg.warp_size * cfg.elements_per_thread)
        checked = 0
        for stats in result.rounds:
            run = stats.run_length
            if stats.kind == "registers" or run % cfg.warp_size:
                continue
            if run < cfg.warp_size * cfg.elements_per_thread:
                continue
            measured = stats.merge_report.total_transactions * stats.scale
            assert measured >= warp_passes * bound, stats.label
            checked += 1
        assert checked >= 2  # the sweep sizes always reach constructible runs

    def test_small_e_bound_is_tight(self):
        """Small-``E`` regime (E < w/2): the bound is exact, E² per warp."""
        cfg = CONFIGS["small-e"]  # E=3 < w/2=4
        n = cfg.tile_size * 8
        result = PairwiseMergeSort(cfg).sort(generate("worst-case", cfg, n, seed=0))
        bound = predicted_warp_transactions(cfg.warp_size, cfg.elements_per_thread)
        warp_passes = n // (cfg.warp_size * cfg.elements_per_thread)
        for stats in result.rounds:
            run = stats.run_length
            if stats.kind == "registers" or run % cfg.warp_size:
                continue
            if run < cfg.warp_size * cfg.elements_per_thread:
                continue
            measured = stats.merge_report.total_transactions * stats.scale
            assert measured == warp_passes * bound, stats.label
