"""Tests for arbitrary-length sorting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.sort.any_length import sort_any_length
from repro.sort.config import SortConfig


@pytest.fixture
def cfg():
    return SortConfig(elements_per_thread=3, block_size=8, warp_size=4)


class TestSortAnyLength:
    def test_exact_tile_multiple(self, cfg, rng):
        data = rng.permutation(cfg.tile_size * 2)
        out = sort_any_length(data, cfg)
        assert np.array_equal(out.values, np.sort(data))
        assert out.padding_overhead == 1.0

    def test_ragged(self, cfg, rng):
        data = rng.integers(-50, 50, size=100)
        out = sort_any_length(data, cfg)
        assert np.array_equal(out.values, np.sort(data))
        assert out.padded_elements >= 100
        assert out.num_elements == 100

    def test_tiny(self, cfg):
        out = sort_any_length(np.array([2, 1]), cfg)
        assert out.values.tolist() == [1, 2]

    def test_rejects_empty(self, cfg):
        with pytest.raises(ValidationError):
            sort_any_length(np.array([]), cfg)

    def test_rejects_2d(self, cfg):
        with pytest.raises(ValidationError):
            sort_any_length(np.zeros((2, 2)), cfg)

    def test_metrics_rescaled(self, cfg, rng):
        data = rng.permutation(50)
        out = sort_any_length(data, cfg)
        assert out.replays_per_element() >= out.padded_result.replays_per_element()

    def test_with_padding_mitigation(self, cfg, rng):
        data = rng.permutation(77)
        out = sort_any_length(data, cfg, padding=1)
        assert np.array_equal(out.values, np.sort(data))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-99, 99), min_size=1, max_size=200))
    def test_property(self, values):
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        out = sort_any_length(np.array(values), cfg)
        assert out.values.tolist() == sorted(values)
