"""Tests for the oblivious bitonic baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sort.bitonic import BitonicSort


@pytest.fixture
def sorter():
    return BitonicSort(block_size=8, warp_size=4)


class TestCorrectness:
    def test_random(self, sorter, rng):
        data = rng.permutation(256)
        assert np.array_equal(sorter.sort(data).values, np.sort(data))

    def test_duplicates(self, sorter, rng):
        data = rng.integers(0, 5, size=128)
        assert np.array_equal(sorter.sort(data).values, np.sort(data))

    def test_sorted_and_reverse(self, sorter):
        n = 64
        assert np.array_equal(sorter.sort(np.arange(n)).values, np.arange(n))
        assert np.array_equal(
            sorter.sort(np.arange(n)[::-1].copy()).values, np.arange(n)
        )

    def test_input_not_mutated(self, sorter, rng):
        data = rng.permutation(64)
        copy = data.copy()
        sorter.sort(data)
        assert np.array_equal(data, copy)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=4, max_value=8), st.data())
    def test_property(self, k, data):
        n = 1 << k
        values = np.array(
            data.draw(st.lists(st.integers(-99, 99), min_size=n, max_size=n))
        )
        sorter = BitonicSort(block_size=8, warp_size=4)
        assert np.array_equal(sorter.sort(values).values, np.sort(values))

    def test_rejects_non_power_of_two(self, sorter):
        with pytest.raises(ConfigurationError):
            sorter.sort(np.arange(48))

    def test_rejects_below_tile(self, sorter):
        with pytest.raises(ConfigurationError):
            sorter.sort(np.arange(8))  # tile is 16

    def test_rejects_small_block(self):
        with pytest.raises(ConfigurationError):
            BitonicSort(block_size=4, warp_size=8)


class TestObliviousness:
    def test_conflicts_are_input_independent(self, rng):
        """The whole point: identical conflict counts for every input."""
        sorter = BitonicSort(block_size=32, warp_size=16)
        n = 1 << 12
        inputs = [
            rng.permutation(n),
            np.arange(n),
            np.arange(n)[::-1].copy(),
            rng.integers(0, 3, size=n),
        ]
        counts = {sorter.sort(x).total_shared_cycles() for x in inputs}
        replays = {sorter.sort(x).total_replays() for x in inputs}
        assert len(counts) == 1
        assert len(replays) == 1

    def test_step_count(self):
        """log N (log N + 1) / 2 compare-exchange steps."""
        sorter = BitonicSort(block_size=8, warp_size=4)
        result = sorter.sort(np.arange(64))
        assert len(result.rounds) == 6 * 7 // 2

    def test_low_distance_conflicts_exist(self):
        """d < w steps produce the classic 2-way shared conflicts."""
        sorter = BitonicSort(block_size=32, warp_size=16)
        result = sorter.sort(np.arange(1 << 10))
        d1 = [r for r in result.rounds if r.label.endswith("-d1")]
        assert d1 and all(r.merge_report.total_replays > 0 for r in d1)

    def test_global_steps_have_traffic_not_conflicts(self):
        sorter = BitonicSort(block_size=8, warp_size=4)
        result = sorter.sort(np.arange(256))
        glob = [r for r in result.rounds if r.kind == "global"]
        assert glob
        for r in glob:
            assert r.global_traffic.words == 2 * 256
            assert r.merge_report.total_transactions == 0


class TestVersusMergeSort:
    def test_immune_to_merge_sort_adversary(self, rng):
        """Feeding the merge-sort worst-case permutation to bitonic changes
        nothing (while it doubles the merge sort's cycles)."""
        from repro.adversary.permutation import worst_case_permutation
        from repro.sort.config import SortConfig
        from repro.sort.pairwise import PairwiseMergeSort

        cfg = SortConfig(elements_per_thread=4, block_size=8, warp_size=8)
        n = cfg.tile_size * 8  # 256, power of two -> valid for both sorts
        adversarial = worst_case_permutation(cfg, n)

        bitonic = BitonicSort(block_size=8, warp_size=8)
        b_adv = bitonic.sort(adversarial).total_shared_cycles()
        b_rand = bitonic.sort(rng.permutation(n)).total_shared_cycles()
        assert b_adv == b_rand
