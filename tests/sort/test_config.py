"""Unit tests for SortConfig."""

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.sort.config import SortConfig


class TestValidation:
    def test_block_must_be_power_of_two(self):
        with pytest.raises(ValidationError):
            SortConfig(elements_per_thread=15, block_size=500)

    def test_block_at_least_warp(self):
        with pytest.raises(ConfigurationError):
            SortConfig(elements_per_thread=15, block_size=16, warp_size=32)

    def test_positive_e(self):
        with pytest.raises(ValidationError):
            SortConfig(elements_per_thread=0, block_size=32)


class TestDerived:
    def test_paper_thrust_maxwell(self):
        cfg = SortConfig(elements_per_thread=15, block_size=512)
        assert cfg.tile_size == 7680
        assert cfg.warps_per_block == 16
        assert cfg.shared_bytes_per_block == 30720  # 30 KiB, per the paper
        assert cfg.is_coprime
        assert cfg.num_block_rounds == 9

    def test_paper_thrust_cc60(self):
        cfg = SortConfig(elements_per_thread=17, block_size=256)
        assert cfg.shared_bytes_per_block == 17408  # 17 KiB, per the paper
        assert cfg.is_coprime

    def test_gcd(self):
        assert SortConfig(elements_per_thread=12, block_size=64,
                          warp_size=16).gcd_we == 4

    def test_num_global_rounds(self):
        cfg = SortConfig(elements_per_thread=15, block_size=512)
        assert cfg.num_global_rounds(7680) == 0
        assert cfg.num_global_rounds(7680 * 1024) == 10

    def test_num_threads(self):
        cfg = SortConfig(elements_per_thread=15, block_size=512)
        assert cfg.num_threads(7680 * 2) == 1024


class TestInputSizes:
    def test_accepts_tile_times_power_of_two(self):
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        for k in range(5):
            assert cfg.validate_input_size(24 * (1 << k)) == 24 * (1 << k)

    def test_rejects_non_multiple(self):
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        with pytest.raises(ConfigurationError, match="nearest valid"):
            cfg.validate_input_size(25)

    def test_rejects_non_power_tile_count(self):
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        with pytest.raises(ConfigurationError):
            cfg.validate_input_size(24 * 3)

    def test_valid_sizes(self):
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        assert cfg.valid_sizes(200) == [24, 48, 96, 192]

    def test_paper_sweep_sizes_are_valid(self):
        """Every N the paper reports a peak at is bE·2^k for its preset."""
        thrust = SortConfig(elements_per_thread=15, block_size=512)
        for n in (7_864_320, 31_457_280, 62_914_560, 3_932_160):
            assert thrust.validate_input_size(n) == n
        cc60 = SortConfig(elements_per_thread=17, block_size=256)
        for n in (35_651_584, 285_212_672):
            assert cc60.validate_input_size(n) == n
