"""Unit tests for the host-side reference sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.sort.cpu_reference import cpu_merge_sort, is_sorted


class TestIsSorted:
    def test_cases(self):
        assert is_sorted(np.array([]))
        assert is_sorted(np.array([1]))
        assert is_sorted(np.array([1, 1, 2]))
        assert not is_sorted(np.array([2, 1]))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            is_sorted(np.zeros((2, 2)))


class TestCpuMergeSort:
    def test_empty(self):
        assert cpu_merge_sort(np.array([], dtype=np.int64)).size == 0

    def test_matches_numpy(self, rng):
        data = rng.integers(0, 1000, size=64)
        assert np.array_equal(cpu_merge_sort(data), np.sort(data))

    def test_run_length_base(self, rng):
        data = rng.integers(0, 1000, size=48)
        assert np.array_equal(cpu_merge_sort(data, run_length=3), np.sort(data))

    def test_rejects_bad_run_length(self):
        with pytest.raises(ValidationError):
            cpu_merge_sort(np.arange(10), run_length=3)

    def test_rejects_non_power_of_two_runs(self):
        with pytest.raises(ValidationError):
            cpu_merge_sort(np.arange(12), run_length=4)  # 3 runs

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=5), st.data())
    def test_random_power_of_two_sizes(self, k, data):
        n = 1 << k
        values = np.array(
            data.draw(st.lists(st.integers(-50, 50), min_size=n, max_size=n))
        )
        assert np.array_equal(cpu_merge_sort(values), np.sort(values))
