"""Fused round scoring against the loop oracle, on both backends.

The fused layer (``scoring="fused"``) promises bit-identity with the
per-tile loop oracle while never materializing order arrays, address
matrices, or traces — and it promises it twice: once for the optional
compiled backend (:mod:`repro._fused_native`) and once for the numpy
fallback that serves when the extension is absent or
``REPRO_FORCE_NUMPY=1``. This suite runs whichever backend is live (CI
runs it under both), so every assertion here is a statement about the
active backend; the toggle test pins the two backends against *each
other* in one process.

Matrix: four constructed families × padding on/off × full vs sampled
scoring × three shape regimes, including ``b == w`` (a single warp per
block — the partial-warp-table edge where warp-step trimming has no
interior warps to hide behind) and a non-power-of-two ``E``.
"""

import numpy as np
import pytest

from repro.dmm import fused as dmm_fused
from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort
from tests.engine.comparison import FAMILIES, assert_results_identical

CONFIGS = {
    "small-e": SortConfig(elements_per_thread=3, block_size=16, warp_size=8),
    "b-equals-w": SortConfig(elements_per_thread=2, block_size=4, warp_size=4),
    "large-e": SortConfig(elements_per_thread=5, block_size=16, warp_size=8),
}

_ORACLE = {}


def loop_oracle(cfg_name, input_name, n, padding, score_blocks):
    """Reference result, cached per cell (the loop path is the slow one)."""
    key = (cfg_name, input_name, n, padding, score_blocks)
    if key not in _ORACLE:
        cfg = CONFIGS[cfg_name]
        data = generate(input_name, cfg, n, seed=0)
        _ORACLE[key] = PairwiseMergeSort(
            cfg, padding=padding, scoring="loop"
        ).sort(data, score_blocks=score_blocks, seed=0)
    return _ORACLE[key]


def fused_result(cfg_name, input_name, n, padding, score_blocks, **kwargs):
    cfg = CONFIGS[cfg_name]
    data = generate(input_name, cfg, n, seed=0)
    return PairwiseMergeSort(
        cfg, padding=padding, scoring="fused", **kwargs
    ).sort(data, score_blocks=score_blocks, seed=0)


class TestFusedMatchesLoop:
    @pytest.mark.parametrize("score_blocks", [None, 2], ids=["full", "sampled"])
    @pytest.mark.parametrize("padding", [0, 1])
    @pytest.mark.parametrize("input_name", FAMILIES)
    @pytest.mark.parametrize("cfg_name", sorted(CONFIGS))
    def test_constructed_families(
        self, cfg_name, input_name, padding, score_blocks
    ):
        n = CONFIGS[cfg_name].tile_size * 8
        assert_results_identical(
            fused_result(cfg_name, input_name, n, padding, score_blocks),
            loop_oracle(cfg_name, input_name, n, padding, score_blocks),
        )

    @pytest.mark.parametrize("tiles", [1, 4], ids=["one-tile", "global-rounds"])
    def test_random_input(self, tiles):
        """Unstructured data; one tile = block rounds only (no global
        reconstruction path at all), four tiles = both round kinds."""
        n = CONFIGS["small-e"].tile_size * tiles
        assert_results_identical(
            fused_result("small-e", "random", n, 0, None),
            loop_oracle("small-e", "random", n, 0, None),
        )

    def test_sampled_rng_draw_order(self):
        """Sampled scoring draws scored-block indices per round from the
        seeded generator; the fused path must consume draws in the same
        order or every later round scores different blocks."""
        n = CONFIGS["small-e"].tile_size * 8
        for seed in (1, 7):
            cfg = CONFIGS["small-e"]
            data = generate("random", cfg, n, seed=0)
            rf = PairwiseMergeSort(cfg, scoring="fused").sort(
                data, score_blocks=3, seed=seed
            )
            rl = PairwiseMergeSort(cfg, scoring="loop").sort(
                data, score_blocks=3, seed=seed
            )
            assert_results_identical(rf, rl)


class TestFusedMatchesSiblings:
    """Fused ≡ vectorized ≡ memoized (all already ≡ loop; these pins are
    direct so a failure names the diverging pair)."""

    @pytest.mark.parametrize("input_name", FAMILIES)
    def test_vectorized(self, input_name):
        n = CONFIGS["small-e"].tile_size * 8
        cfg = CONFIGS["small-e"]
        data = generate(input_name, cfg, n, seed=0)
        rv = PairwiseMergeSort(cfg, memo=None).sort(data, seed=0)
        assert_results_identical(
            fused_result("small-e", input_name, n, 0, None), rv
        )

    def test_memoized(self):
        n = CONFIGS["small-e"].tile_size * 8
        cfg = CONFIGS["small-e"]
        data = generate("worst-case", cfg, n, seed=0)
        rm = PairwiseMergeSort(cfg, memo="auto").sort(data, seed=0)
        assert_results_identical(
            fused_result("small-e", "worst-case", n, 0, None), rm
        )


class TestBackendToggle:
    def test_force_numpy_env_disables_native(self, monkeypatch):
        monkeypatch.setenv(dmm_fused.FORCE_NUMPY_ENV, "1")
        assert dmm_fused.active_backend() == "numpy"
        assert not dmm_fused.native_enabled()
        monkeypatch.setenv(dmm_fused.FORCE_NUMPY_ENV, "0")
        assert dmm_fused.native_enabled() == (
            dmm_fused.native_module() is not None
        )

    def test_backends_agree_in_process(self, monkeypatch):
        """The real cross-backend pin: the same sort under the forced
        numpy fallback and under the compiled kernels, compared directly
        (skipped when the extension was not built — CI's numpy leg)."""
        if dmm_fused.native_module() is None:
            pytest.skip("compiled extension not built")
        n = CONFIGS["b-equals-w"].tile_size * 8
        monkeypatch.setenv(dmm_fused.FORCE_NUMPY_ENV, "1")
        numpy_result = fused_result("b-equals-w", "worst-case", n, 1, 2)
        monkeypatch.delenv(dmm_fused.FORCE_NUMPY_ENV)
        assert dmm_fused.active_backend() == "native"
        native_result = fused_result("b-equals-w", "worst-case", n, 1, 2)
        assert_results_identical(native_result, numpy_result)

    def test_values_sorted(self):
        """Belt and braces: fused output is actually sorted."""
        cfg = CONFIGS["large-e"]
        n = cfg.tile_size * 4
        data = generate("random", cfg, n, seed=5)
        result = PairwiseMergeSort(cfg, scoring="fused").sort(data)
        np.testing.assert_array_equal(result.values, np.sort(data))
