"""The pattern memo's warm-state contract and configuration surface.

The memoized-vs-plain-vs-loop equivalence *matrix* moved to
``tests/engine/test_engine_equivalence.py`` (the ``inline-memoized``
engine rows). What stays here is what only the memo itself can show:
warm-memo behavior (round-level hits, cross-sort and cross-size
sharing, eviction churn staying exact), the sampled-draws case that
must hold *while memoizing*, and the memo configuration/validation
surface of ``PairwiseMergeSort``.
"""

import numpy as np
import pytest

from repro.dmm.memo import ConflictMemo
from repro.errors import ValidationError
from repro.inputs.generators import generate
from repro.sort.pairwise import PairwiseMergeSort
from tests.engine.comparison import CONFIGS, assert_results_identical


def run_three(config, data, *, score_blocks=None, seed=0, padding=0):
    """One sort per scoring path: memoized, plain vectorized, loop."""
    results = []
    for kwargs in (
        {"memo": ConflictMemo()},
        {"memo": None},
        {"scoring": "loop"},
    ):
        sorter = PairwiseMergeSort(config, padding=padding, **kwargs)
        results.append(sorter.sort(data, score_blocks=score_blocks, seed=seed))
    return results


class TestMemoizedSampling:
    @pytest.mark.parametrize("score_blocks", [1, 2, 3])
    def test_sampled_rounds_share_rng_draws(self, score_blocks):
        cfg = CONFIGS["small-e"]
        data = generate("random", cfg, cfg.tile_size * 16, seed=3)
        memoized, plain, loop = run_three(
            cfg, data, score_blocks=score_blocks, seed=777
        )
        assert_results_identical(memoized, plain)
        assert_results_identical(memoized, loop)


class TestWarmMemo:
    def test_round_hits_stay_bit_identical(self):
        """A second sort of the same data is served by round-level hits;
        its result must still match a cold sort exactly."""
        cfg = CONFIGS["small-e"]
        data = generate("worst-case", cfg, cfg.tile_size * 8, seed=0)
        memo = ConflictMemo()
        sorter = PairwiseMergeSort(cfg, memo=memo)
        first = sorter.sort(data)
        second = sorter.sort(data)
        assert_results_identical(second, first)
        assert_results_identical(
            second, PairwiseMergeSort(cfg, memo=None).sort(data)
        )
        assert second.memo_stats.hits > 0
        assert second.memo_stats.misses == 0  # every round replayed from cache

    def test_cross_size_sharing(self):
        """Block-round work recurs across sweep sizes: sorting 2N after N
        with a shared memo must hit and stay exact."""
        cfg = CONFIGS["small-e"]
        memo = ConflictMemo()
        sorter = PairwiseMergeSort(cfg, memo=memo)
        small = generate("worst-case", cfg, cfg.tile_size * 4, seed=0)
        large = generate("worst-case", cfg, cfg.tile_size * 8, seed=0)
        sorter.sort(small)
        warm = sorter.sort(large)
        assert warm.memo_stats.hits > 0
        assert_results_identical(
            warm, PairwiseMergeSort(cfg, memo=None).sort(large)
        )

    def test_periodic_input_dedups_within_one_sort(self):
        """The constructed input is periodic at every round — even a cold
        sort must dedup its tiles rather than score each one. (A cold memo
        has nothing to *hit*; dedup shows up as far fewer stored tile
        entries than lookups.)"""
        cfg = CONFIGS["small-e"]
        data = generate("worst-case", cfg, cfg.tile_size * 8, seed=0)
        stats = PairwiseMergeSort(cfg, memo=ConflictMemo()).sort(data).memo_stats
        assert stats.hits == 0
        # Every round of the periodic input presents one repeated pattern:
        # exactly one unique tile entry per memoized round, despite each
        # round looking up every scored tile.
        assert stats.tile_entries == stats.round_entries
        assert stats.misses > 2 * stats.tile_entries

    def test_eviction_churn_stays_exact(self):
        """A pathologically small table forces constant FIFO eviction; the
        memoized result must still be bit-identical."""
        cfg = CONFIGS["small-e"]
        data = generate("random", cfg, cfg.tile_size * 16, seed=7)
        memoized = PairwiseMergeSort(cfg, memo=ConflictMemo(max_entries=2)).sort(
            data
        )
        assert_results_identical(
            memoized, PairwiseMergeSort(cfg, memo=None).sort(data)
        )


class TestMemoConfiguration:
    def test_auto_default_builds_memo(self):
        assert isinstance(PairwiseMergeSort(CONFIGS["tiny"]).memo, ConflictMemo)

    def test_auto_with_loop_scoring_is_memo_free(self):
        assert PairwiseMergeSort(CONFIGS["tiny"], scoring="loop").memo is None

    def test_none_escape_hatch(self):
        sorter = PairwiseMergeSort(CONFIGS["tiny"], memo=None)
        assert sorter.memo is None
        data = generate("random", CONFIGS["tiny"], CONFIGS["tiny"].tile_size * 2)
        assert sorter.sort(data).memo_stats is None

    def test_loop_result_has_no_memo_stats(self):
        cfg = CONFIGS["tiny"]
        data = generate("random", cfg, cfg.tile_size * 2)
        result = PairwiseMergeSort(cfg, scoring="loop").sort(data)
        assert result.memo_stats is None

    def test_explicit_memo_with_loop_rejected(self):
        with pytest.raises(ValidationError):
            PairwiseMergeSort(
                CONFIGS["tiny"], scoring="loop", memo=ConflictMemo()
            )

    def test_bad_memo_value_rejected(self):
        with pytest.raises(ValidationError):
            PairwiseMergeSort(CONFIGS["tiny"], memo="always")

    def test_memo_stats_is_per_sort_delta(self):
        """With a shared memo, each result reports its own sort's hits and
        misses, not the memo's lifetime counters."""
        cfg = CONFIGS["tiny"]
        data = generate("sorted", cfg, cfg.tile_size * 4)
        memo = ConflictMemo()
        sorter = PairwiseMergeSort(cfg, memo=memo)
        first = sorter.sort(data)
        second = sorter.sort(data)
        assert first.memo_stats.misses > 0
        assert second.memo_stats.misses == 0
        assert memo.hits == first.memo_stats.hits + second.memo_stats.hits
        assert memo.misses == first.memo_stats.misses + second.memo_stats.misses


def test_values_still_sorted():
    cfg = CONFIGS["large-e"]
    data = generate("reverse", cfg, cfg.tile_size * 8, seed=0)
    result = PairwiseMergeSort(cfg, memo=ConflictMemo()).sort(data)
    np.testing.assert_array_equal(result.values, np.sort(data))
