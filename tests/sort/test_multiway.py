"""Tests for the K-way merge sort substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.permutation import worst_case_permutation
from repro.errors import ValidationError
from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.multiway import MultiwaySort
from repro.sort.pairwise import PairwiseMergeSort


@pytest.fixture
def cfg():
    return SortConfig(elements_per_thread=3, block_size=8, warp_size=8)


class TestCorrectness:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_random(self, cfg, rng, k):
        n = cfg.tile_size * 16
        data = rng.permutation(n)
        result = MultiwaySort(cfg, k=k).sort(data)
        assert np.array_equal(result.values, np.sort(data))

    def test_duplicates(self, cfg, rng):
        n = cfg.tile_size * 8
        data = rng.integers(0, 5, size=n)
        result = MultiwaySort(cfg, k=4).sort(data)
        assert np.array_equal(result.values, np.sort(data))

    def test_single_tile(self, cfg, rng):
        data = rng.permutation(cfg.tile_size)
        result = MultiwaySort(cfg, k=4).sort(data)
        assert np.array_equal(result.values, np.sort(data))

    def test_partial_final_fan(self, cfg, rng):
        """Tiles = 2 with K = 4: the round degrades to fan 2."""
        n = cfg.tile_size * 2
        data = rng.permutation(n)
        result = MultiwaySort(cfg, k=4).sort(data)
        assert np.array_equal(result.values, np.sort(data))
        labels = [r.label for r in result.rounds if "multiway" in r.label]
        assert labels == [f"multiway-round-L{cfg.tile_size}-K2"]

    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_rejects_bad_fan(self, cfg, k):
        with pytest.raises(ValidationError):
            MultiwaySort(cfg, k=k)

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_property(self, data):
        cfg = SortConfig(elements_per_thread=3, block_size=4, warp_size=4)
        tiles = data.draw(st.sampled_from([4, 8, 16]))
        n = cfg.tile_size * tiles
        values = np.array(
            data.draw(st.lists(st.integers(-30, 30), min_size=n, max_size=n))
        )
        result = MultiwaySort(cfg, k=4).sort(values)
        assert np.array_equal(result.values, np.sort(values))


class TestRoundStructure:
    def test_fewer_rounds_than_pairwise(self, cfg, rng):
        n = cfg.tile_size * 64
        data = rng.permutation(n)
        mw = MultiwaySort(cfg, k=8).sort(data, score_blocks=2)
        pw = PairwiseMergeSort(cfg).sort(data, score_blocks=2)
        assert mw.num_rounds < pw.num_rounds

    def test_round_count_formula(self, cfg):
        mw = MultiwaySort(cfg, k=4)
        assert mw.num_multiway_rounds(cfg.tile_size) == 0
        assert mw.num_multiway_rounds(cfg.tile_size * 4) == 1
        assert mw.num_multiway_rounds(cfg.tile_size * 8) == 2  # 8 -> 2 -> 1
        assert mw.num_multiway_rounds(cfg.tile_size * 64) == 3

    def test_less_global_traffic(self, cfg, rng):
        n = cfg.tile_size * 64
        data = rng.permutation(n)
        mw = MultiwaySort(cfg, k=8).sort(data, score_blocks=2)
        pw = PairwiseMergeSort(cfg).sort(data, score_blocks=2)
        assert (
            mw.total_global_traffic().words < 0.7 * pw.total_global_traffic().words
        )


class TestAdversarialRobustness:
    def test_pairwise_adversary_hurts_multiway_less(self):
        """The constructed input is pairwise-specific: its relative damage
        to the K-way merge is a fraction of its damage to the pairwise
        merge."""
        cfg = SortConfig(elements_per_thread=15, block_size=64, warp_size=32)
        n = cfg.tile_size * 64
        worst = worst_case_permutation(cfg, n)
        random = generate("random", cfg, n, seed=0)

        def edge(sorter):
            w = sorter.sort(worst, score_blocks=4).total_shared_cycles()
            r = sorter.sort(random, score_blocks=4).total_shared_cycles()
            return w / r

        pairwise_edge = edge(PairwiseMergeSort(cfg))
        multiway_edge = edge(MultiwaySort(cfg, k=8))
        assert multiway_edge < 0.75 * pairwise_edge
        assert pairwise_edge > 1.5
