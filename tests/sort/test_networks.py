"""Unit and property tests for the odd-even sorting network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.sort.networks import apply_oddeven_network, network_depth, oddeven_network


class TestNetworkStructure:
    def test_width_one(self):
        assert oddeven_network(1) == ()

    def test_width_three(self):
        assert oddeven_network(3) == ((0, 1), (1, 2), (0, 1))

    def test_comparators_in_bounds(self):
        for width in range(1, 20):
            for i, j in oddeven_network(width):
                assert 0 <= i < j < width
                assert j == i + 1  # transposition network: adjacent wires

    def test_depth(self):
        assert network_depth(7) == 7


class TestZeroOnePrinciple:
    def test_sorts_all_binary_inputs(self):
        """The 0-1 principle: a comparator network sorts everything iff it
        sorts every 0/1 input — checked exhaustively for widths <= 10."""
        for width in range(1, 11):
            inputs = np.array(
                [[(m >> i) & 1 for i in range(width)] for m in range(1 << width)]
            )
            out, _ = apply_oddeven_network(inputs)
            assert (np.diff(out, axis=1) >= 0).all(), f"width {width}"


class TestApply:
    def test_rows_sorted_independently(self, rng):
        rows = rng.integers(0, 100, size=(50, 9))
        out, ops = apply_oddeven_network(rows)
        assert np.array_equal(out, np.sort(rows, axis=1))
        assert ops == len(oddeven_network(9)) * 50

    def test_input_not_mutated(self):
        rows = np.array([[3, 1, 2]])
        apply_oddeven_network(rows)
        assert rows.tolist() == [[3, 1, 2]]

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            apply_oddeven_network(np.arange(5))

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=1, max_value=16), st.data())
    def test_random_rows(self, width, data):
        values = data.draw(
            st.lists(st.integers(-1000, 1000), min_size=width, max_size=width)
        )
        out, _ = apply_oddeven_network(np.array([values]))
        assert out[0].tolist() == sorted(values)
