"""Unit, integration, and property tests for the pairwise merge sort
simulator — correctness of the sort itself plus instrumentation sanity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ValidationError
from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort


class TestSortCorrectness:
    def test_identity_on_sorted(self, tiny_config):
        n = tiny_config.tile_size * 2
        data = np.arange(n)
        result = PairwiseMergeSort(tiny_config).sort(data)
        assert np.array_equal(result.values, data)

    def test_random_permutation(self, small_config, rng):
        n = small_config.tile_size * 8
        data = rng.permutation(n)
        result = PairwiseMergeSort(small_config).sort(data)
        assert np.array_equal(result.values, np.arange(n))

    def test_duplicates(self, small_config, rng):
        n = small_config.tile_size * 4
        data = rng.integers(0, 7, size=n)
        result = PairwiseMergeSort(small_config).sort(data)
        assert np.array_equal(result.values, np.sort(data))

    def test_all_equal(self, tiny_config):
        n = tiny_config.tile_size * 2
        data = np.full(n, 42)
        result = PairwiseMergeSort(tiny_config).sort(data)
        assert np.array_equal(result.values, data)

    def test_reverse_sorted(self, large_e_config):
        n = large_e_config.tile_size * 4
        data = np.arange(n)[::-1]
        result = PairwiseMergeSort(large_e_config).sort(data)
        assert np.array_equal(result.values, np.arange(n))

    def test_negative_values(self, tiny_config, rng):
        n = tiny_config.tile_size * 2
        data = rng.integers(-1000, 1000, size=n)
        result = PairwiseMergeSort(tiny_config).sort(data)
        assert np.array_equal(result.values, np.sort(data))

    def test_single_tile_no_global_rounds(self, tiny_config, rng):
        data = rng.permutation(tiny_config.tile_size)
        result = PairwiseMergeSort(tiny_config).sort(data)
        assert np.array_equal(result.values, np.arange(tiny_config.tile_size))
        assert result.num_rounds == tiny_config.num_block_rounds

    def test_rejects_invalid_size(self, tiny_config):
        with pytest.raises(ConfigurationError):
            PairwiseMergeSort(tiny_config).sort(np.arange(100))

    def test_input_not_mutated(self, tiny_config, rng):
        data = rng.permutation(tiny_config.tile_size * 2)
        copy = data.copy()
        PairwiseMergeSort(tiny_config).sort(data)
        assert np.array_equal(data, copy)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_property_sorts_anything(self, data):
        cfg = SortConfig(elements_per_thread=3, block_size=4, warp_size=4)
        tiles = data.draw(st.sampled_from([1, 2, 4, 8]))
        n = cfg.tile_size * tiles
        values = np.array(
            data.draw(st.lists(st.integers(-50, 50), min_size=n, max_size=n))
        )
        result = PairwiseMergeSort(cfg).sort(values)
        assert np.array_equal(result.values, np.sort(values))


class TestRoundStructure:
    def test_round_labels_and_counts(self, small_config, rng):
        n = small_config.tile_size * 4
        result = PairwiseMergeSort(small_config).sort(rng.permutation(n))
        kinds = [r.kind for r in result.rounds]
        assert kinds[0] == "registers"
        assert kinds.count("block") == small_config.num_block_rounds
        assert kinds.count("global") == 2

    def test_run_lengths_double(self, small_config, rng):
        n = small_config.tile_size * 2
        result = PairwiseMergeSort(small_config).sort(rng.permutation(n))
        merges = [r for r in result.rounds if r.kind != "registers"]
        lengths = [r.run_length for r in merges]
        assert lengths == [small_config.E * (1 << i) for i in range(len(merges))]


class TestInstrumentation:
    def test_register_staging_coprime_is_conflict_free(self, rng):
        """GCD(E, w) = 1 makes the E-strided register loads conflict free —
        the Dotsenko observation the paper cites."""
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        result = PairwiseMergeSort(cfg).sort(rng.permutation(cfg.tile_size))
        assert result.rounds[0].staging_report.total_replays == 0

    def test_register_staging_power_of_two_conflicts(self, rng):
        """E = w makes every register load a full-warp conflict."""
        cfg = SortConfig(elements_per_thread=4, block_size=8, warp_size=4)
        result = PairwiseMergeSort(cfg).sort(rng.permutation(cfg.tile_size))
        staging = result.rounds[0].staging_report
        assert staging.max_degree == 4

    def test_global_traffic_words(self, small_config, rng):
        n = small_config.tile_size * 4
        result = PairwiseMergeSort(small_config).sort(rng.permutation(n))
        traffic = result.total_global_traffic()
        # base (2N) + 2 global rounds x (2N + probes)
        assert traffic.words >= 6 * n

    def test_block_rounds_have_no_global_traffic(self, small_config, rng):
        n = small_config.tile_size * 2
        result = PairwiseMergeSort(small_config).sort(rng.permutation(n))
        for r in result.rounds:
            if r.kind == "block":
                assert r.global_traffic.transactions == 0

    def test_kernel_cost_aggregation(self, small_config, rng):
        n = small_config.tile_size * 4
        result = PairwiseMergeSort(small_config).sort(rng.permutation(n))
        cost = result.kernel_cost(32)
        assert cost.shared_cycles == round(result.total_shared_cycles())
        assert cost.kernel_launches == 1 + 2 * 2
        assert cost.warps_per_sm == 32

    def test_replays_per_element_positive_for_random(self, small_config, rng):
        n = small_config.tile_size * 4
        result = PairwiseMergeSort(small_config).sort(rng.permutation(n))
        assert result.replays_per_element() > 0


class TestSampledScoring:
    def test_sampling_estimates_exact(self, small_config, rng):
        """Sampled scoring must estimate full scoring within noise."""
        n = small_config.tile_size * 32
        data = rng.permutation(n)
        sorter = PairwiseMergeSort(small_config)
        exact = sorter.sort(data)
        sampled = sorter.sort(data, score_blocks=8)
        assert np.array_equal(exact.values, sampled.values)
        ratio = sampled.total_shared_cycles() / exact.total_shared_cycles()
        assert 0.9 < ratio < 1.1

    def test_sampling_exact_on_periodic_input(self, small_config):
        """The constructed input is block-periodic: a 2-block sample is
        exact for merge-stage cycles."""
        from repro.adversary.permutation import worst_case_permutation

        n = small_config.tile_size * 16
        data = worst_case_permutation(small_config, n)
        sorter = PairwiseMergeSort(small_config)
        exact = sorter.sort(data)
        sampled = sorter.sort(data, score_blocks=2)
        for r_exact, r_sampled in zip(exact.rounds, sampled.rounds):
            if r_exact.kind == "global":
                per_block_exact = (
                    r_exact.merge_report.total_transactions / r_exact.blocks_scored
                )
                per_block_sampled = (
                    r_sampled.merge_report.total_transactions
                    / r_sampled.blocks_scored
                )
                assert per_block_exact == per_block_sampled

    def test_invalid_score_blocks(self, small_config, rng):
        # Bad user input is a validation failure, not a simulator bug.
        with pytest.raises(ValidationError):
            PairwiseMergeSort(small_config).sort(
                rng.permutation(small_config.tile_size * 2), score_blocks=0
            )

    def test_score_blocks_at_least_total_traces_everything(self, small_config, rng):
        result = PairwiseMergeSort(small_config).sort(
            rng.permutation(small_config.tile_size * 2), score_blocks=10_000
        )
        for r in result.rounds:
            assert r.blocks_scored == r.blocks_total


class TestChooseBlocksDrawOrder:
    """Pin down the RNG-consumption contract of block sampling.

    The parallel sweep runner replays sorts worker-side and relies on the
    sampled-block draws being a pure function of (seed, round sequence) —
    independent of the scoring implementation and of validation order.
    """

    def test_rng_untouched_when_tracing_everything(self, small_config, rng):
        from repro.sort.pairwise import _choose_blocks

        g = np.random.default_rng(3)
        before = g.bit_generator.state
        np.testing.assert_array_equal(_choose_blocks(4, None, g), np.arange(4))
        np.testing.assert_array_equal(_choose_blocks(4, 4, g), np.arange(4))
        np.testing.assert_array_equal(_choose_blocks(4, 99, g), np.arange(4))
        assert g.bit_generator.state == before

    def test_validation_precedes_shortcircuit(self):
        from repro.sort.pairwise import _choose_blocks

        # score_blocks=0 must fail even when the shortcircuit (0 >= total)
        # would otherwise return an empty selection without drawing.
        with pytest.raises(ValidationError):
            _choose_blocks(0, 0, np.random.default_rng(0))

    def test_sampling_draws_once_sorted(self):
        from repro.sort.pairwise import _choose_blocks

        g1 = np.random.default_rng(11)
        g2 = np.random.default_rng(11)
        picked = _choose_blocks(100, 8, g1)
        assert picked.tolist() == sorted(picked.tolist())
        assert len(set(picked.tolist())) == 8
        # Exactly the draws of one choice() call were consumed.
        expected = np.sort(g2.choice(100, size=8, replace=False))
        np.testing.assert_array_equal(picked, expected)
        assert g1.bit_generator.state == g2.bit_generator.state

    def test_both_scoring_paths_draw_identically(self, small_config, rng):
        import repro.sort.pairwise as pairwise_mod

        n = small_config.tile_size * 16
        data = rng.permutation(n)
        calls: dict[str, list] = {"vectorized": [], "loop": []}
        original = pairwise_mod._choose_blocks

        for mode in ("vectorized", "loop"):

            def recording(total, score_blocks, rng_, _mode=mode):
                picked = original(total, score_blocks, rng_)
                calls[_mode].append((total, score_blocks, picked.tolist()))
                return picked

            pairwise_mod._choose_blocks = recording
            try:
                PairwiseMergeSort(small_config, scoring=mode).sort(
                    data, score_blocks=4, seed=123
                )
            finally:
                pairwise_mod._choose_blocks = original

        assert calls["vectorized"] == calls["loop"]
        assert any(
            len(picked) < total for total, _, picked in calls["vectorized"]
        ), "expected at least one genuinely sampled round"


class TestAllGenerators:
    @pytest.mark.parametrize(
        "name",
        ["random", "sorted", "reverse", "few-unique", "sawtooth",
         "conflict-heavy", "worst-case"],
    )
    def test_sorts_every_generator(self, small_config, name):
        n = small_config.tile_size * 4
        data = generate(name, small_config, n, seed=7)
        result = PairwiseMergeSort(small_config).sort(data)
        assert np.array_equal(result.values, np.sort(data))
