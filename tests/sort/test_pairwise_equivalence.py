"""Exact-vs-vectorized scoring equivalence — the tentpole's oracle.

``PairwiseMergeSort(scoring="loop")`` keeps the original per-tile scoring
bodies verbatim; ``scoring="vectorized"`` batches every scored tile of a
round into single NumPy passes. The two must be *bit-identical*: same sorted
values, same round structure, same conflict counters, same per-step cost
arrays, and — with block sampling on — the same sampled-block RNG draws.

These tests cover every round kind (registers / block / global), the three
``E`` regimes (small, large, power-of-two), several input families, both
sampling modes, and nonzero shared-memory padding.
"""

import numpy as np
import pytest

from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort

CONFIGS = {
    "tiny": SortConfig(elements_per_thread=3, block_size=8, warp_size=4),
    "small-e": SortConfig(elements_per_thread=3, block_size=16, warp_size=8),
    "large-e": SortConfig(elements_per_thread=5, block_size=16, warp_size=8),
    "pow2-e": SortConfig(elements_per_thread=4, block_size=16, warp_size=8),
}

INPUTS = ["random", "sorted", "reverse", "few-unique", "sawtooth", "worst-case"]


def assert_reports_identical(a, b, context):
    assert a.num_banks == b.num_banks, context
    assert a.num_steps == b.num_steps, context
    assert a.num_accesses == b.num_accesses, context
    assert a.num_requests == b.num_requests, context
    assert a.total_transactions == b.total_transactions, context
    assert a.total_replays == b.total_replays, context
    assert a.max_degree == b.max_degree, context
    np.testing.assert_array_equal(
        a.per_step_transactions, b.per_step_transactions, err_msg=context
    )


def assert_results_identical(rv, rl):
    np.testing.assert_array_equal(rv.values, rl.values)
    assert len(rv.rounds) == len(rl.rounds)
    for sv, sl in zip(rv.rounds, rl.rounds):
        assert sv.label == sl.label
        assert sv.kind == sl.kind
        assert sv.run_length == sl.run_length
        assert sv.blocks_total == sl.blocks_total
        assert sv.blocks_scored == sl.blocks_scored
        assert sv.compute_instructions == sl.compute_instructions
        assert sv.global_traffic == sl.global_traffic
        assert_reports_identical(sv.merge_report, sl.merge_report, sv.label)
        assert_reports_identical(
            sv.partition_report, sl.partition_report, sv.label
        )
        assert_reports_identical(sv.staging_report, sl.staging_report, sv.label)


def run_both(config, data, *, score_blocks=None, seed=0, padding=0):
    rv = PairwiseMergeSort(config, padding=padding, scoring="vectorized").sort(
        data, score_blocks=score_blocks, seed=seed
    )
    rl = PairwiseMergeSort(config, padding=padding, scoring="loop").sort(
        data, score_blocks=score_blocks, seed=seed
    )
    return rv, rl


class TestFullScoringEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("input_name", INPUTS)
    def test_all_configs_and_inputs(self, config_name, input_name):
        cfg = CONFIGS[config_name]
        n = cfg.tile_size * 8
        data = generate(input_name, cfg, n, seed=42)
        assert_results_identical(*run_both(cfg, data))

    def test_single_tile_no_global_rounds(self):
        cfg = CONFIGS["tiny"]
        data = generate("random", cfg, cfg.tile_size, seed=1)
        rv, rl = run_both(cfg, data)
        assert all(r.kind != "global" for r in rv.rounds)
        assert_results_identical(rv, rl)

    def test_many_global_rounds(self):
        cfg = CONFIGS["small-e"]
        data = generate("random", cfg, cfg.tile_size * 32, seed=5)
        rv, rl = run_both(cfg, data)
        assert sum(r.kind == "global" for r in rv.rounds) == 5
        assert_results_identical(rv, rl)

    def test_with_padding(self):
        cfg = CONFIGS["small-e"]
        data = generate("conflict-heavy", cfg, cfg.tile_size * 4, seed=9)
        assert_results_identical(*run_both(cfg, data, padding=1))


class TestSampledScoringEquivalence:
    @pytest.mark.parametrize("score_blocks", [1, 2, 3])
    def test_sampled_rounds_share_rng_draws(self, score_blocks):
        """Sampling draws blocks from a seeded generator; the vectorized
        path must consume it identically, so the sampled results (not just
        the expected values) match bit for bit."""
        cfg = CONFIGS["small-e"]
        data = generate("random", cfg, cfg.tile_size * 16, seed=3)
        assert_results_identical(
            *run_both(cfg, data, score_blocks=score_blocks, seed=777)
        )

    def test_sampled_large_e(self):
        cfg = CONFIGS["large-e"]
        data = generate("reverse", cfg, cfg.tile_size * 16, seed=0)
        assert_results_identical(*run_both(cfg, data, score_blocks=2, seed=1))

    def test_sampled_with_padding(self):
        cfg = CONFIGS["pow2-e"]
        data = generate("sawtooth", cfg, cfg.tile_size * 8, seed=0)
        assert_results_identical(
            *run_both(cfg, data, score_blocks=2, seed=55, padding=1)
        )


class TestKernelCostEquivalence:
    def test_aggregate_cost_identical(self):
        """The timing-model inputs derived from both paths must agree."""
        cfg = CONFIGS["small-e"]
        data = generate("worst-case", cfg, cfg.tile_size * 8, seed=0)
        rv, rl = run_both(cfg, data)
        assert rv.kernel_cost(8) == rl.kernel_cost(8)
        assert rv.replays_per_element() == rl.replays_per_element()
        assert rv.total_shared_cycles() == rl.total_shared_cycles()
