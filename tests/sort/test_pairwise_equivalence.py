"""Structural loop-vs-vectorized checks the engine suite does not cover.

The full equivalence *matrices* (every scoring path × every input family
× every ``E`` regime × padding × sampling) moved to
``tests/engine/test_engine_equivalence.py``, which runs them through
every registered execution engine against the loop oracle. What stays
here are the structure-sensitive cases: round-kind composition (no
global rounds for a single tile, exactly five for 32), the sampled-block
RNG draw alignment at several sample counts, and the aggregate
kernel-cost accessors — each asserted loop-vs-vectorized directly on the
sorter, where the structure is visible.

The shared config/input matrix and comparators live in
``tests/engine/comparison.py``.
"""

import pytest

from repro.inputs.generators import generate
from repro.sort.pairwise import PairwiseMergeSort
from tests.engine.comparison import (  # noqa: F401  (re-exported for callers)
    CONFIGS,
    INPUTS,
    assert_reports_identical,
    assert_results_identical,
)


def run_both(config, data, *, score_blocks=None, seed=0, padding=0):
    rv = PairwiseMergeSort(config, padding=padding, scoring="vectorized").sort(
        data, score_blocks=score_blocks, seed=seed
    )
    rl = PairwiseMergeSort(config, padding=padding, scoring="loop").sort(
        data, score_blocks=score_blocks, seed=seed
    )
    return rv, rl


class TestRoundStructure:
    def test_single_tile_no_global_rounds(self):
        cfg = CONFIGS["tiny"]
        data = generate("random", cfg, cfg.tile_size, seed=1)
        rv, rl = run_both(cfg, data)
        assert all(r.kind != "global" for r in rv.rounds)
        assert_results_identical(rv, rl)

    def test_many_global_rounds(self):
        cfg = CONFIGS["small-e"]
        data = generate("random", cfg, cfg.tile_size * 32, seed=5)
        rv, rl = run_both(cfg, data)
        assert sum(r.kind == "global" for r in rv.rounds) == 5
        assert_results_identical(rv, rl)

    def test_conflict_heavy_with_padding(self):
        """conflict-heavy is not an analytic family, so the engine suite's
        padding rows never reach it — pin it here."""
        cfg = CONFIGS["small-e"]
        data = generate("conflict-heavy", cfg, cfg.tile_size * 4, seed=9)
        assert_results_identical(*run_both(cfg, data, padding=1))


class TestSampledScoringEquivalence:
    @pytest.mark.parametrize("score_blocks", [1, 2, 3])
    def test_sampled_rounds_share_rng_draws(self, score_blocks):
        """Sampling draws blocks from a seeded generator; the vectorized
        path must consume it identically, so the sampled results (not just
        the expected values) match bit for bit."""
        cfg = CONFIGS["small-e"]
        data = generate("random", cfg, cfg.tile_size * 16, seed=3)
        assert_results_identical(
            *run_both(cfg, data, score_blocks=score_blocks, seed=777)
        )

    def test_sampled_large_e(self):
        cfg = CONFIGS["large-e"]
        data = generate("reverse", cfg, cfg.tile_size * 16, seed=0)
        assert_results_identical(*run_both(cfg, data, score_blocks=2, seed=1))

    def test_sampled_with_padding(self):
        cfg = CONFIGS["pow2-e"]
        data = generate("sawtooth", cfg, cfg.tile_size * 8, seed=0)
        assert_results_identical(
            *run_both(cfg, data, score_blocks=2, seed=55, padding=1)
        )


class TestKernelCostEquivalence:
    def test_aggregate_cost_identical(self):
        """The timing-model inputs derived from both paths must agree."""
        cfg = CONFIGS["small-e"]
        data = generate("worst-case", cfg, cfg.tile_size * 8, seed=0)
        rv, rl = run_both(cfg, data)
        assert rv.kernel_cost(8) == rl.kernel_cost(8)
        assert rv.replays_per_element() == rl.replays_per_element()
        assert rv.total_shared_cycles() == rl.total_shared_cycles()
