"""Unit tests for the library presets."""

import pytest

from repro.errors import ValidationError
from repro.gpu.device import QUADRO_M4000, RTX_2080_TI
from repro.sort.presets import (
    MGPU_MAXWELL,
    THRUST_CC60,
    THRUST_MAXWELL,
    default_presets_for,
    preset,
)


class TestPaperParameters:
    def test_thrust_maxwell(self):
        """CUDA 10.1 Thrust on the Quadro M4000: E=15, b=512."""
        assert THRUST_MAXWELL.E == 15
        assert THRUST_MAXWELL.b == 512

    def test_thrust_cc60(self):
        """Thrust compute-6.0 defaults (RTX 2080 Ti fallback): E=17, b=256."""
        assert THRUST_CC60.E == 17
        assert THRUST_CC60.b == 256

    def test_mgpu_maxwell(self):
        """Modern GPU on the Quadro M4000: E=15, b=128."""
        assert MGPU_MAXWELL.E == 15
        assert MGPU_MAXWELL.b == 128

    def test_all_coprime_with_warp(self):
        for cfg in (THRUST_MAXWELL, THRUST_CC60, MGPU_MAXWELL):
            assert cfg.is_coprime  # odd E — why the constructions apply


class TestLookup:
    def test_by_name(self):
        assert preset("thrust-maxwell") is THRUST_MAXWELL
        assert preset("THRUST-E15-B512") is THRUST_MAXWELL
        assert preset("mgpu-e15-b128") is MGPU_MAXWELL

    def test_unknown(self):
        with pytest.raises(ValidationError, match="known:"):
            preset("radix")


class TestDefaults:
    def test_rtx_gets_both_parameter_sets(self):
        assert default_presets_for(RTX_2080_TI) == [THRUST_MAXWELL, THRUST_CC60]

    def test_maxwell_gets_library_tunings(self):
        assert default_presets_for(QUADRO_M4000) == [THRUST_MAXWELL, MGPU_MAXWELL]
