"""Differential tests: the executable reference kernel vs the fast path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dmm.conflicts import count_conflicts
from repro.dmm.trace import AccessTrace
from repro.errors import ValidationError
from repro.mergepath.kernels import stack_warp_steps, thread_rank_addresses
from repro.mergepath.partition import merge_path_search, partition_with_trace
from repro.mergepath.serial_merge import (
    interleaving_addresses,
    merge_values,
    stable_merge_interleaving,
)
from repro.sort.config import SortConfig
from repro.sort.reference_kernel import reference_block_merge


def fast_path(a, b, cfg):
    """The batched computation PairwiseMergeSort uses, for one merge."""
    src_a = stable_merge_interleaving(a, b)
    merged = merge_values(a, b)
    addr = interleaving_addresses(src_a)  # A at [0, na), B after
    threads = (a.size + b.size) // cfg.E
    matrix = thread_rank_addresses(addr, cfg.E)
    num_warps = -(-threads // cfg.w)
    padded = np.full((cfg.E, num_warps * cfg.w), -1, dtype=np.int64)
    padded[:, :threads] = matrix
    merge_report = count_conflicts(
        AccessTrace.from_dense(stack_warp_steps(padded, cfg.w)), cfg.w
    )
    diagonals = np.arange(threads, dtype=np.int64) * cfg.E
    ai, _, _ = partition_with_trace(a, b, diagonals, a_base=0, b_base=a.size)
    return merged, ai, merge_report


@pytest.fixture
def cfg():
    return SortConfig(elements_per_thread=3, block_size=8, warp_size=8)


class TestReferenceMerge:
    def test_values_match_numpy(self, cfg, rng):
        a = np.sort(rng.integers(0, 100, size=12))
        b = np.sort(rng.integers(0, 100, size=12))
        result = reference_block_merge(a, b, cfg)
        assert np.array_equal(result.merged, np.sort(np.concatenate([a, b]),
                                                     kind="stable"))

    def test_unbalanced_lists(self, cfg, rng):
        a = np.sort(rng.integers(0, 50, size=3))
        b = np.sort(rng.integers(0, 50, size=21))
        result = reference_block_merge(a, b, cfg)
        assert np.array_equal(result.merged, merge_values(a, b))

    def test_empty_a(self, cfg):
        b = np.arange(24)
        result = reference_block_merge(np.array([], dtype=np.int64), b, cfg)
        assert np.array_equal(result.merged, b)

    def test_partition_matches_scalar_search(self, cfg, rng):
        a = np.sort(rng.integers(0, 30, size=12))
        b = np.sort(rng.integers(0, 30, size=12))
        result = reference_block_merge(a, b, cfg)
        for t, split in enumerate(result.a_split):
            want, _ = merge_path_search(a, b, t * cfg.E)
            assert split == want

    def test_rejects_ragged(self, cfg):
        with pytest.raises(ValidationError):
            reference_block_merge(np.arange(4), np.arange(3), cfg)

    def test_rejects_unsorted(self, cfg):
        with pytest.raises(ValidationError):
            reference_block_merge(np.array([2, 1, 0]), np.arange(3), cfg)


class TestDifferentialAgainstFastPath:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_merge_conflicts_agree(self, data):
        """Reference execution and batched scoring count identically."""
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=8)
        tile = 48
        na = data.draw(st.integers(min_value=0, max_value=tile))
        keys = np.array(
            data.draw(
                st.lists(st.integers(0, 40), min_size=tile, max_size=tile)
            )
        )
        a = np.sort(keys[:na])
        b = np.sort(keys[na:])
        reference = reference_block_merge(a, b, cfg)
        merged, ai, merge_report = fast_path(a, b, cfg)
        assert np.array_equal(reference.merged, merged)
        assert np.array_equal(reference.a_split, ai)
        assert (
            reference.merge_report.total_transactions
            == merge_report.total_transactions
        )
        assert reference.merge_report.total_replays == merge_report.total_replays

    def test_adversarial_block_agrees(self):
        """The constructed warp input scores identically both ways — and at
        exactly the theorem count."""
        from repro.adversary.assignment import construct_warp_assignment
        from repro.mergepath.serial_merge import unmerge

        w, e = 16, 7
        cfg = SortConfig(elements_per_thread=e, block_size=16, warp_size=w)
        wa = construct_warp_assignment(w, e)
        pattern = wa.interleaving()
        a, b = unmerge(np.arange(w * e, dtype=np.int64), pattern)
        reference = reference_block_merge(a, b, cfg)
        # One warp, E steps, each with an E-way aligned pile-up: E² cycles.
        assert reference.merge_report.total_transactions == e * e

    def test_padding_agrees_with_fast_path_counts(self, rng):
        """Padded reference execution matches the padded batched scoring."""
        from repro.mitigation.padding import pad_addresses

        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=8)
        keys = rng.permutation(48)
        a = np.sort(keys[:24])
        b = np.sort(keys[24:])
        reference = reference_block_merge(a, b, cfg, padding=1)

        src_a = stable_merge_interleaving(a, b)
        addr = interleaving_addresses(src_a)
        matrix = thread_rank_addresses(addr, cfg.E)
        padded = pad_addresses(stack_warp_steps(matrix, cfg.w), cfg.w, 1)
        want = count_conflicts(AccessTrace.from_dense(padded), cfg.w)
        assert reference.merge_report.total_transactions == want.total_transactions
