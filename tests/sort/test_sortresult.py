"""Unit tests for RoundStats / SortResult aggregation arithmetic."""

import numpy as np
import pytest

from repro.dmm.conflicts import ConflictReport, count_conflicts
from repro.dmm.trace import AccessTrace
from repro.errors import SimulationError
from repro.gpu.global_memory import GlobalTraffic
from repro.sort.config import SortConfig
from repro.sort.pairwise import RoundStats, SortResult


def report(dense):
    return count_conflicts(AccessTrace.from_dense(np.asarray(dense)), 4)


def make_round(label="r", kind="global", scored=2, total=6, **kwargs):
    defaults = dict(
        label=label,
        kind=kind,
        run_length=8,
        merge_report=report([[0, 4, 8, 1]]),  # 3 tx, 2 replays
        partition_report=report([[0, 1, 2, 3]]),  # 1 tx, 0 replays
        staging_report=ConflictReport.empty(4),
        global_traffic=GlobalTraffic(transactions=10, words=40),
        compute_instructions=100,
        blocks_total=total,
        blocks_scored=scored,
    )
    defaults.update(kwargs)
    return RoundStats(**defaults)


class TestRoundStats:
    def test_scale(self):
        assert make_round(scored=2, total=6).scale == 3.0
        assert make_round(scored=6, total=6).scale == 1.0

    def test_scaled_cycles(self):
        r = make_round(scored=2, total=6)
        # merge 3 + partition 1 = 4 traced transactions, x3 scale.
        assert r.shared_cycles == 12.0
        assert r.replays == 6.0  # 2 replays x3

    def test_staging_not_scaled(self):
        staging = report([[0, 4, 8, 12]]).scaled(5)
        r = make_round(scored=1, total=10, staging_report=staging)
        assert r.shared_cycles == (3 + 1) * 10 + staging.total_transactions

    def test_stage_specific_replays(self):
        r = make_round(scored=3, total=6)
        assert r.merge_replays == 4.0  # 2 x2
        assert r.partition_replays == 0.0

    def test_zero_scored(self):
        r = make_round(scored=0, total=0)
        assert r.scale == 0.0

    def test_zero_scored_with_blocks_raises(self):
        # Previously returned NaN, which propagated silently through
        # shared_cycles/replays into benchmark output.
        r = make_round(scored=0, total=6)
        with pytest.raises(SimulationError):
            r.scale
        with pytest.raises(SimulationError):
            r.shared_cycles
        with pytest.raises(SimulationError):
            r.replays


class TestSortResult:
    def make_result(self):
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        result = SortResult(values=np.arange(48), config=cfg, num_elements=48)
        result.rounds = [
            make_round("base", kind="registers", scored=2, total=2,
                       global_traffic=GlobalTraffic(4, 16)),
            make_round("g1", kind="global", scored=2, total=2),
            make_round("g2", kind="global", scored=2, total=2),
        ]
        return result

    def test_num_rounds_excludes_registers(self):
        assert self.make_result().num_rounds == 2

    def test_totals(self):
        result = self.make_result()
        assert result.total_shared_cycles() == 3 * 4.0
        assert result.total_replays() == 3 * 2.0
        assert result.replays_per_element() == pytest.approx(6 / 48)

    def test_traffic_merged(self):
        traffic = self.make_result().total_global_traffic()
        assert traffic.transactions == 10 + 10 + 4
        assert traffic.words == 40 + 40 + 16

    def test_kernel_cost_launches(self):
        cost = self.make_result().kernel_cost(warps_per_sm=16)
        assert cost.kernel_launches == 1 + 2 * 2
        assert cost.warps_per_sm == 16
        assert cost.shared_cycles == 12
        assert cost.compute_warp_instructions == 300
