"""Behavior of the harness-speed regression gate (benchmarks/check_regression.py).

The gate runs as a standalone script in CI, so it is tested the same way:
as a subprocess over small synthetic timing documents. Covered here: the
pass/fail threshold, the non-gating of one-sided timings, the min/IQR
noise annotations, and the Python-version provenance (a prominent
mismatch warning plus both versions named in every failure message).
"""

import json
import platform
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


def doc(timings, python=None):
    return {
        "schema": 1,
        "python": python or platform.python_version(),
        "timings": timings,
    }


def run_gate(tmp_path, current, baseline, *extra_args):
    current_path = tmp_path / "current.json"
    baseline_path = tmp_path / "baseline.json"
    current_path.write_text(json.dumps(current))
    baseline_path.write_text(json.dumps(baseline))
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(current_path), str(baseline_path),
         *extra_args],
        capture_output=True,
        text=True,
    )


class TestThreshold:
    def test_within_threshold_passes(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.15}}),
            doc({"exact": {"seconds": 0.10}}),
        )
        assert proc.returncode == 0
        assert "within threshold" in proc.stdout

    def test_regression_fails(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.30}}),
            doc({"exact": {"seconds": 0.10}}),
        )
        assert proc.returncode == 1
        assert "3.00x" in proc.stderr

    def test_custom_threshold(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.30}}),
            doc({"exact": {"seconds": 0.10}}),
            "--threshold", "4.0",
        )
        assert proc.returncode == 0

    def test_one_sided_timings_never_gate(self, tmp_path):
        """A new benchmark (or a removed one) must not require regenerating
        the baseline in the same commit."""
        proc = run_gate(
            tmp_path,
            doc({"brand_new": {"seconds": 99.0}}),
            doc({"retired": {"seconds": 0.001}}),
        )
        assert proc.returncode == 0
        assert "no baseline, not gated" in proc.stdout
        assert "baseline only" in proc.stdout


class TestMalformedEntries:
    """A baseline whose entry shape predates the current run's must warn
    and skip, never crash the gate (adding a row like ``analytic_sweep``
    can't break CI on older baselines)."""

    def test_baseline_entry_without_seconds_is_skipped(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"analytic_sweep": {"seconds": 0.001},
                 "exact": {"seconds": 0.10}}),
            doc({"analytic_sweep": {"comment": "placeholder, no timing"},
                 "exact": {"seconds": 0.10}}),
        )
        assert proc.returncode == 0
        assert "malformed baseline entry" in proc.stderr
        assert "skipped, not gated" in proc.stderr
        assert "exact" in proc.stdout  # well-formed rows still gate

    def test_current_entry_without_seconds_is_skipped(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"minutes": 1}}),
            doc({"exact": {"seconds": 0.10}}),
        )
        assert proc.returncode == 0
        assert "malformed current entry" in proc.stderr

    def test_non_dict_entry_is_skipped(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.10}}),
            doc({"exact": 0.10}),
        )
        assert proc.returncode == 0
        assert "malformed baseline entry" in proc.stderr

    def test_malformed_entry_never_masks_a_real_regression(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"broken": {"seconds": 9.0}, "exact": {"seconds": 0.50}}),
            doc({"broken": {}, "exact": {"seconds": 0.10}}),
        )
        assert proc.returncode == 1
        assert "exact" in proc.stderr


class TestNoiseAnnotations:
    def test_min_and_iqr_printed(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.15, "min_seconds": 0.12,
                           "iqr_seconds": 0.03}}),
            doc({"exact": {"seconds": 0.10}}),
        )
        assert proc.returncode == 0
        assert "min 0.1200s" in proc.stdout
        assert "iqr ±0.0300s" in proc.stdout

    def test_entries_without_stats_still_compare(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.10}}),
            doc({"exact": {"seconds": 0.10}}),
        )
        assert proc.returncode == 0
        assert "min " not in proc.stdout


class TestPythonVersionProvenance:
    def test_matching_versions_no_warning(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.10}}),
            doc({"exact": {"seconds": 0.10}}),
        )
        assert "WARNING" not in proc.stderr

    def test_mismatch_warns_prominently(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.10}}, python="3.12.4"),
            doc({"exact": {"seconds": 0.10}}, python="3.11.7"),
        )
        assert proc.returncode == 0  # mismatch alone never fails the gate
        assert "WARNING: Python version mismatch" in proc.stderr
        assert "3.11.7" in proc.stderr
        assert "3.12.4" in proc.stderr
        assert "=" * 72 in proc.stderr

    def test_failure_message_names_both_versions(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.50}}, python="3.12.4"),
            doc({"exact": {"seconds": 0.10}}, python="3.11.7"),
        )
        assert proc.returncode == 1
        assert "baseline Python 3.11.7" in proc.stderr
        assert "current Python 3.12.4" in proc.stderr


class TestDocumentValidation:
    def test_rejects_non_bench_document(self, tmp_path):
        proc = run_gate(tmp_path, {"not": "a bench doc"}, doc({}))
        assert proc.returncode != 0
        assert "no 'timings' object" in proc.stderr

    def test_committed_baseline_is_loadable(self, tmp_path):
        """The default baseline at the repo root must parse and gate."""
        baseline = json.loads(
            (SCRIPT.parent.parent / "BENCH_simulator.json").read_text()
        )
        assert isinstance(baseline["timings"], dict)
        assert "sweep_memoized" in baseline["timings"]
        proc = run_gate(tmp_path, baseline, baseline)
        assert proc.returncode == 0


class TestRequiredRows:
    """``--require`` closes the silent-row-drop hole: a refactor that
    stops producing a gated benchmark row must fail the gate, not pass
    it vacuously."""

    def test_present_rows_pass(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.11}, "sweep": {"seconds": 0.2}}),
            doc({"exact": {"seconds": 0.10}, "sweep": {"seconds": 0.2}}),
            "--require", "exact,sweep",
        )
        assert proc.returncode == 0

    def test_row_missing_from_current_fails(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"sweep": {"seconds": 0.2}}),
            doc({"exact": {"seconds": 0.10}, "sweep": {"seconds": 0.2}}),
            "--require", "exact",
        )
        assert proc.returncode == 1
        assert "required row missing from the current document" in proc.stderr

    def test_row_missing_from_baseline_fails(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.10}}),
            doc({}),
            "--require", "exact",
        )
        assert proc.returncode == 1
        assert "required row missing from the baseline document" in proc.stderr

    def test_malformed_required_row_fails(self, tmp_path):
        """A required row that exists but is skipped as malformed must
        still fail — otherwise the skip path reopens the hole."""
        proc = run_gate(
            tmp_path,
            doc({"exact": {"note": "no seconds"}}),
            doc({"exact": {"seconds": 0.10}}),
            "--require", "exact",
        )
        assert proc.returncode == 1
        assert "malformed" in proc.stderr

    def test_unrequired_missing_rows_still_pass(self, tmp_path):
        proc = run_gate(
            tmp_path,
            doc({"exact": {"seconds": 0.11}}),
            doc({"exact": {"seconds": 0.10}, "gone": {"seconds": 0.5}}),
        )
        assert proc.returncode == 0
