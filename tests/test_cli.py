"""CLI smoke tests (everything runs through main() with small sizes)."""

import pytest

from repro.cli import main


class TestConstruct:
    def test_small_e(self, capsys):
        assert main(["construct", "--warp", "16", "-E", "7"]) == 0
        out = capsys.readouterr().out
        assert "aligned=49" in out
        assert "bank 15" in out

    def test_large_e(self, capsys):
        assert main(["construct", "--warp", "16", "-E", "9"]) == 0
        out = capsys.readouterr().out
        assert "aligned=80" in out


class TestSimulate:
    def test_worst_case_run(self, capsys):
        assert (
            main(
                ["simulate", "--preset", "mgpu-maxwell", "--tiles", "4",
                 "--input", "worst-case", "--score-blocks", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sorted correctly: True" in out
        assert "Melem/s" in out

    def test_random_run(self, capsys):
        assert (
            main(["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                  "--input", "random"])
            == 0
        )
        assert "sorted correctly: True" in capsys.readouterr().out


class TestSweep:
    def test_small_sweep(self, capsys):
        assert (
            main(
                ["sweep", "--preset", "mgpu-maxwell",
                 "--max-elements", "1000000",
                 "--exact-threshold", "262144"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "worst-case vs random" in out
        assert "slowdown" in out


class TestFigure:
    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "aligned=48" in capsys.readouterr().out

    def test_figure3(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "aligned=49" in out and "aligned=80" in out

    def test_theory(self, capsys):
        assert main(["figure", "theory", "--markdown"]) == 0
        assert "| 32 | 15 | small | 225 | 225 |" in capsys.readouterr().out

    @pytest.mark.slow
    def test_figure6_small(self, capsys):
        assert main(["figure", "6", "--max-elements", "2000000"]) == 0
        assert "Figure 6" in capsys.readouterr().out


class TestAnalyze:
    def test_table_and_theory_lines(self, capsys):
        assert main(["analyze", "--preset", "mgpu-maxwell", "--tiles", "4"]) == 0
        out = capsys.readouterr().out
        assert "beta1" in out and "worst-case" in out
        assert "balls-in-bins" in out


class TestJsonExport:
    def test_figure3_json(self, tmp_path, capsys):
        target = tmp_path / "fig3.json"
        assert main(["figure", "3", "--json", str(target)]) == 0
        import json

        data = json.loads(target.read_text())
        assert data["small"]["aligned"] == 49
        assert data["large"]["aligned"] == 80

    def test_theory_json(self, tmp_path):
        target = tmp_path / "theory.json"
        assert main(["figure", "theory", "--json", str(target)]) == 0
        import json

        rows = json.loads(target.read_text())["rows"]
        assert any(r["E"] == 15 and r["predicted"] == 225 for r in rows)


class TestMemoReporting:
    def test_simulate_prints_memo_stats(self, capsys):
        assert (
            main(["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                  "--input", "worst-case"])
            == 0
        )
        out = capsys.readouterr().out
        assert "memoized scoring:" in out
        assert "hit rate" in out

    def test_no_memo_flag_disables_reporting(self, capsys):
        assert (
            main(["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                  "--input", "worst-case", "--no-memo"])
            == 0
        )
        out = capsys.readouterr().out
        assert "sorted correctly: True" in out
        assert "memoized scoring:" not in out

    def test_cache_stats_includes_conflict_memo(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "conflict memo (this process):" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_input(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--input", "bogus"])
