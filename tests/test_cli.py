"""CLI smoke tests (everything runs through main() with small sizes)."""

import pytest

from repro.cli import main


class TestConstruct:
    def test_small_e(self, capsys):
        assert main(["construct", "--warp", "16", "-E", "7"]) == 0
        out = capsys.readouterr().out
        assert "aligned=49" in out
        assert "bank 15" in out

    def test_large_e(self, capsys):
        assert main(["construct", "--warp", "16", "-E", "9"]) == 0
        out = capsys.readouterr().out
        assert "aligned=80" in out


class TestSimulate:
    def test_worst_case_run(self, capsys):
        assert (
            main(
                ["simulate", "--preset", "mgpu-maxwell", "--tiles", "4",
                 "--input", "worst-case", "--score-blocks", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sorted correctly: True" in out
        assert "Melem/s" in out

    def test_random_run(self, capsys):
        assert (
            main(["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                  "--input", "random"])
            == 0
        )
        assert "sorted correctly: True" in capsys.readouterr().out


class TestSweep:
    def test_small_sweep(self, capsys):
        assert (
            main(
                ["sweep", "--preset", "mgpu-maxwell",
                 "--max-elements", "1000000",
                 "--exact-threshold", "262144"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "worst-case vs random" in out
        assert "slowdown" in out


class TestFigure:
    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "aligned=48" in capsys.readouterr().out

    def test_figure3(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "aligned=49" in out and "aligned=80" in out

    def test_theory(self, capsys):
        assert main(["figure", "theory", "--markdown"]) == 0
        assert "| 32 | 15 | small | 225 | 225 |" in capsys.readouterr().out

    @pytest.mark.slow
    def test_figure6_small(self, capsys):
        assert main(["figure", "6", "--max-elements", "2000000"]) == 0
        assert "Figure 6" in capsys.readouterr().out


class TestAnalyze:
    def test_table_and_theory_lines(self, capsys):
        assert main(["analyze", "--preset", "mgpu-maxwell", "--tiles", "4"]) == 0
        out = capsys.readouterr().out
        assert "beta1" in out and "worst-case" in out
        assert "balls-in-bins" in out


class TestJsonExport:
    def test_figure3_json(self, tmp_path, capsys):
        target = tmp_path / "fig3.json"
        assert main(["figure", "3", "--json", str(target)]) == 0
        import json

        data = json.loads(target.read_text())
        assert data["small"]["aligned"] == 49
        assert data["large"]["aligned"] == 80

    def test_theory_json(self, tmp_path):
        target = tmp_path / "theory.json"
        assert main(["figure", "theory", "--json", str(target)]) == 0
        import json

        rows = json.loads(target.read_text())["rows"]
        assert any(r["E"] == 15 and r["predicted"] == 225 for r in rows)


class TestMemoReporting:
    def test_simulate_prints_memo_stats(self, capsys):
        assert (
            main(["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                  "--input", "worst-case"])
            == 0
        )
        out = capsys.readouterr().out
        assert "memoized scoring:" in out
        assert "hit rate" in out

    def test_no_memo_flag_disables_reporting(self, capsys):
        assert (
            main(["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                  "--input", "worst-case", "--no-memo"])
            == 0
        )
        out = capsys.readouterr().out
        assert "sorted correctly: True" in out
        assert "memoized scoring:" not in out

    def test_cache_stats_includes_conflict_memo(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "conflict memo (this process):" in capsys.readouterr().out


class TestBenchKernels:
    """``bench kernels`` emits record_timing-shaped rows the regression
    gate can consume."""

    def test_prints_table_and_writes_json(self, tmp_path, capsys):
        target = tmp_path / "kernels.json"
        assert (
            main(["bench", "kernels", "--preset", "mgpu-maxwell",
                  "--tiles", "2", "--repeat", "2", "--json", str(target)])
            == 0
        )
        out = capsys.readouterr().out
        assert "kernel_merge_pairs" in out
        assert "kernel_sort_fused" in out
        import json

        document = json.loads(target.read_text())
        assert document["schema"] == 1
        for entry in document["timings"].values():
            # The exact shape check_regression._seconds/_noise_note read.
            assert isinstance(entry["seconds"], float)
            assert isinstance(entry["min_seconds"], float)
            assert isinstance(entry["iqr_seconds"], float)
            assert entry["backend"] in ("native", "numpy")

    def test_json_is_gateable_against_itself(self, tmp_path, capsys):
        """Round-trip through check_regression: a run gated against its
        own document passes with every row present."""
        import subprocess
        import sys
        from pathlib import Path

        target = tmp_path / "kernels.json"
        assert (
            main(["bench", "kernels", "--preset", "mgpu-maxwell",
                  "--tiles", "2", "--repeat", "2", "--json", str(target)])
            == 0
        )
        capsys.readouterr()
        gate = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "check_regression.py"
        )
        proc = subprocess.run(
            [sys.executable, str(gate), str(target), str(target),
             "--require", "kernel_merge_pairs,kernel_sort_fused"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_input(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--input", "bogus"])


class TestVersionAndExitCodes:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        assert "repro-mergesort" in out
        assert any(ch.isdigit() for ch in out)

    def test_validation_failure_exits_2(self, capsys):
        assert main(["simulate", "--preset", "nope", "--tiles", "2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown preset" in err

    def test_unreachable_service_exits_3(self, capsys):
        # Port 1 on loopback is never bound by the suite; the client's
        # transport failure is an internal (retryable) error, not a usage
        # error, and must be distinguishable by exit code.
        assert (
            main(["request", "healthz", "--url", "http://127.0.0.1:1",
                  "--timeout", "5"])
            == 3
        )
        err = capsys.readouterr().err
        assert err.startswith("internal error:")
        assert "unreachable" in err


class TestCachePruneCli:
    def test_prune_without_budget_is_usage_error(self, tmp_path, capsys):
        assert (
            main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        )
        assert "--max-mb" in capsys.readouterr().err

    def test_prune_empty_cache(self, tmp_path, capsys):
        assert (
            main(["cache", "prune", "--cache-dir", str(tmp_path),
                  "--max-mb", "10"])
            == 0
        )
        out = capsys.readouterr().out
        assert "pruned 0 entries" in out

    def test_prune_evicts_entries(self, tmp_path, capsys):
        from repro.bench.cache import BenchCache, point_key
        from repro.bench.runner import SweepRunner
        from repro.gpu.device import QUADRO_M4000
        from repro.sort.config import SortConfig

        cfg = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)
        runner = SweepRunner(
            cfg, QUADRO_M4000,
            exact_threshold=cfg.tile_size * 8, score_blocks=4, seed=0,
            cache=BenchCache(tmp_path),
        )
        for tiles in (2, 4):
            n = cfg.tile_size * tiles
            key = point_key(
                cfg, QUADRO_M4000, padding=0, input_name="worst-case",
                num_elements=n, score_blocks=4, seed=0,
                exact_threshold=cfg.tile_size * 8,
            )
            runner.cache.put_point(key, runner.run_point("worst-case", n))
        assert (
            main(["cache", "prune", "--cache-dir", str(tmp_path),
                  "--max-mb", "0"])
            == 0
        )
        out = capsys.readouterr().out
        assert "pruned 2 entries" in out
        assert runner.cache.stats().point_entries == 0


class TestProgressPrinter:
    @staticmethod
    def events(n=3):
        from repro.bench.parallel import ProgressEvent, sweep_items
        from repro.gpu.device import QUADRO_M4000
        from repro.sort.config import SortConfig

        cfg = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)
        item = sweep_items(cfg, QUADRO_M4000, ["random"], [cfg.tile_size * 2])[0]
        return [
            ProgressEvent(
                done=i + 1, total=n, item=item, point=None, seconds=0.1,
                from_cache=False,
            )
            for i in range(n)
        ]

    def test_non_tty_emits_plain_flushed_lines(self):
        import io

        from repro.cli import _progress_printer

        class Stream(io.StringIO):
            def __init__(self):
                super().__init__()
                self.flushes = 0

            def flush(self):
                self.flushes += 1
                super().flush()

        stream = Stream()
        emit = _progress_printer(stream)
        for event in self.events():
            emit(event)
        out = stream.getvalue()
        assert "\x1b" not in out and "\r" not in out
        assert out.count("\n") == 3
        # One flush per event: piped consumers see progress immediately.
        assert stream.flushes == 3

    def test_tty_updates_in_place(self):
        import io

        from repro.cli import _progress_printer

        class FakeTty(io.StringIO):
            def isatty(self):
                return True

        stream = FakeTty()
        emit = _progress_printer(stream)
        for event in self.events():
            emit(event)
        out = stream.getvalue()
        # Intermediate events erase + overwrite; only the last newlines.
        assert out.count("\x1b[2K") == 3
        assert out.count("\r") == 2
        assert out.endswith("\n") and out.count("\n") == 1

    def test_broken_stream_is_tolerated(self):
        from repro.cli import _progress_printer

        class Broken:
            def write(self, text):
                raise OSError("broken pipe")

            def flush(self):
                raise OSError("broken pipe")

        emit = _progress_printer(Broken())
        for event in self.events(1):
            emit(event)  # must not raise


class TestEngineFlag:
    """``--engine`` picks a registered engine directly; ``--scoring``
    keeps working and the two resolve through the same registry."""

    def test_simulate_engine_inline_loop_matches_scoring_loop(self, capsys):
        argv = ["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                "--input", "worst-case"]
        assert main(argv + ["--engine", "inline-loop"]) == 0
        by_engine = capsys.readouterr().out
        assert main(argv + ["--scoring", "loop"]) == 0
        by_scoring = capsys.readouterr().out
        assert "sorted correctly: True" in by_engine
        assert by_engine == by_scoring

    def test_simulate_engine_analytic(self, capsys):
        assert (
            main(["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                  "--input", "worst-case", "--engine", "analytic"])
            == 0
        )
        assert "sorted correctly: True" in capsys.readouterr().out

    def test_simulate_engine_inline_fused_matches_scoring_fused(self, capsys):
        argv = ["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                "--input", "worst-case"]
        assert main(argv + ["--engine", "inline-fused"]) == 0
        by_engine = capsys.readouterr().out
        assert main(argv + ["--scoring", "fused", "--no-memo"]) == 0
        by_scoring = capsys.readouterr().out
        assert "sorted correctly: True" in by_engine
        assert by_engine == by_scoring

    def test_simulate_unknown_engine_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--preset", "mgpu-maxwell", "--tiles", "2",
                  "--input", "worst-case", "--engine", "warp-drive"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_sweep_engine_inline_matches_default(self, capsys):
        argv = ["sweep", "--preset", "mgpu-maxwell",
                "--max-elements", "1000000", "--exact-threshold", "262144"]
        assert main(argv) == 0
        default = capsys.readouterr().out
        assert main(argv + ["--engine", "inline"]) == 0
        explicit = capsys.readouterr().out
        assert default == explicit
