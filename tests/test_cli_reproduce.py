"""CLI tests for the reproduce command and remaining error paths."""

import pytest

from repro.cli import main


class TestReproduce:
    def test_single_experiment(self, capsys):
        assert main(["reproduce", "--only", "figures-1-and-3"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] figures-1-and-3" in out
        assert "1/1 experiments passed" in out

    def test_theorem_experiments(self, capsys):
        assert main(["reproduce", "--only", "theorem-3-small-E"]) == 0
        assert "align exactly E^2" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        # Validation failures exit 2 with an error: line, not a traceback.
        assert main(["reproduce", "--only", "bogus"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestGridCli:
    def test_small_grid(self, capsys):
        assert (
            main(
                ["grid", "--es", "7", "--bs", "128",
                 "--target-elements", "200000"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "best random-input config" in out
        assert "E=7" in out


class TestRunnerErrorPaths:
    def test_calibration_size_needs_two_tiles(self):
        from repro.bench.runner import SweepRunner
        from repro.errors import ValidationError
        from repro.gpu.device import QUADRO_M4000
        from repro.sort.config import SortConfig

        cfg = SortConfig(elements_per_thread=15, block_size=512, warp_size=32)
        runner = SweepRunner(cfg, QUADRO_M4000,
                             exact_threshold=cfg.tile_size)  # one tile only
        with pytest.raises(ValidationError, match="calibration"):
            runner.run_point("random", cfg.tile_size * 4)


class TestTimingComputeStream:
    def test_compute_can_dominate(self):
        from repro.gpu.device import QUADRO_M4000
        from repro.gpu.timing import KernelCost, TimingModel

        model = TimingModel(QUADRO_M4000, compute_ipc=0.001)
        cost = KernelCost(
            shared_cycles=10,
            shared_steps=10,
            global_transactions=10,
            global_words=320,
            compute_warp_instructions=10**9,
            kernel_launches=1,
            warps_per_sm=32,
        )
        assert model.compute_seconds(cost) > model.shared_seconds(cost)
        assert model.seconds(cost) >= model.compute_seconds(cost)

    def test_low_occupancy_hurts_compute(self):
        from repro.gpu.device import QUADRO_M4000
        from repro.gpu.timing import KernelCost, TimingModel

        model = TimingModel(QUADRO_M4000)
        hi = KernelCost(compute_warp_instructions=10**6, warps_per_sm=32)
        lo = KernelCost(compute_warp_instructions=10**6, warps_per_sm=2)
        assert model.compute_seconds(lo) > model.compute_seconds(hi)


class TestBitonicKernelCost:
    def test_cost_and_timing(self):
        import numpy as np

        from repro.gpu.device import QUADRO_M4000
        from repro.gpu.timing import TimingModel
        from repro.sort.bitonic import BitonicSort

        result = BitonicSort(block_size=64, warp_size=32).sort(
            np.random.default_rng(0).permutation(1 << 12)
        )
        cost = result.kernel_cost(32)
        assert cost.shared_cycles > 0
        assert TimingModel(QUADRO_M4000).milliseconds(cost) > 0
