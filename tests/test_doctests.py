"""Run every module's doctests — all docstring examples must stay true."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("name", _all_modules())
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {name}"
