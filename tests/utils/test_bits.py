"""Unit tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.bits import (
    ceil_div,
    ceil_log2,
    ilog2,
    is_power_of_two,
    next_power_of_two,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in [0, -1, -2, 3, 5, 6, 7, 9, 12, 100]:
            assert not is_power_of_two(n)

    def test_non_int(self):
        assert not is_power_of_two(2.0)
        assert not is_power_of_two("2")


class TestIlog2:
    def test_exact(self):
        for k in range(16):
            assert ilog2(1 << k) == k

    def test_rejects_non_power(self):
        with pytest.raises(ValidationError):
            ilog2(6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            ilog2(0)


class TestCeilLog2:
    def test_small_values(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(4) == 2
        assert ceil_log2(5) == 3

    @given(st.integers(min_value=1, max_value=10**12))
    def test_definition(self, n):
        k = ceil_log2(n)
        assert 2**k >= n
        assert k == 0 or 2 ** (k - 1) < n


class TestNextPowerOfTwo:
    @given(st.integers(min_value=1, max_value=10**12))
    def test_definition(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p // 2 < n


class TestCeilDiv:
    def test_basic(self):
        assert ceil_div(0, 3) == 0
        assert ceil_div(1, 3) == 1
        assert ceil_div(3, 3) == 1
        assert ceil_div(4, 3) == 2

    def test_rejects_bad_divisor(self):
        with pytest.raises(ValidationError):
            ceil_div(1, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ValidationError):
            ceil_div(-1, 2)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_math(self, a, b):
        assert ceil_div(a, b) == (a + b - 1) // b
