"""Unit and property tests for repro.utils.modmath (Facts 5 and 6)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.modmath import (
    are_coprime,
    extended_gcd,
    mod_inverse,
    solve_linear_congruence,
)


class TestAreCoprime:
    def test_examples(self):
        assert are_coprime(15, 32)
        assert are_coprime(17, 32)
        assert not are_coprime(12, 16)
        assert are_coprime(1, 1)


class TestExtendedGcd:
    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**9))
    def test_bezout_identity(self, a, b):
        if a == 0 and b == 0:
            return
        g, x, y = extended_gcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    def test_rejects_both_zero(self):
        with pytest.raises(ValidationError):
            extended_gcd(0, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            extended_gcd(-1, 2)


class TestModInverse:
    @given(st.integers(min_value=2, max_value=10**6),
           st.integers(min_value=1, max_value=10**6))
    def test_fact6_inverse(self, m, a):
        """Fact 6: when GCD(a, m) = 1 the inverse exists, is unique mod m."""
        if math.gcd(a, m) != 1:
            with pytest.raises(ValidationError):
                mod_inverse(a, m)
            return
        inv = mod_inverse(a, m)
        assert 0 <= inv < m
        assert (a * inv) % m == 1

    def test_rejects_modulus_one(self):
        with pytest.raises(ValidationError):
            mod_inverse(3, 1)


class TestSolveLinearCongruence:
    @given(st.integers(min_value=2, max_value=10**5),
           st.integers(min_value=1, max_value=10**5),
           st.integers(min_value=0, max_value=10**5))
    def test_fact5_unique_solution(self, m, a, b):
        """Fact 5: for GCD(a, m) = 1, ax ≡ b (mod m) has one solution."""
        if math.gcd(a, m) != 1:
            return
        x = solve_linear_congruence(a, b, m)
        assert 0 <= x < m
        assert (a * x - b) % m == 0

    def test_uniqueness_exhaustive(self):
        """Brute-force uniqueness for a small modulus."""
        m, a = 9, 7
        for b in range(m):
            solutions = [x for x in range(m) if (a * x - b) % m == 0]
            assert solutions == [solve_linear_congruence(a, b, m)]
