"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.rng import as_generator


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).integers(0, 1 << 30, size=16)
        b = as_generator(42).integers(0, 1 << 30, size=16)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1 << 30, size=16)
        b = as_generator(2).integers(0, 1 << 30, size=16)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence(self):
        gen = as_generator(np.random.SeedSequence(7))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_other_types(self):
        with pytest.raises(ValidationError):
            as_generator("seed")
