"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    as_int,
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_power_of_two,
)


class TestAsInt:
    def test_accepts_python_int(self):
        assert as_int(7, "x") == 7

    def test_accepts_numpy_int(self):
        assert as_int(np.int64(7), "x") == 7
        assert isinstance(as_int(np.int32(3), "x"), int)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="bool"):
            as_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            as_int(7.0, "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError, match="x must be"):
            as_int("7", "x")


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(1, "x") == 1

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValidationError, match="E must be"):
            check_positive_int(-3, "E")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative_int(-1, "x")


class TestCheckPowerOfTwo:
    def test_accepts(self):
        assert check_power_of_two(32, "w") == 32

    def test_rejects(self):
        with pytest.raises(ValidationError):
            check_power_of_two(24, "w")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0, "x", 0, 5) == 0
        assert check_in_range(5, "x", 0, 5) == 5

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range(6, "x", 0, 5)
